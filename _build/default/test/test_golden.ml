(* Golden-trace conformance for the simulator substrate.

   Three self-contained synthetic traces (streaming, hot-set + pointer-chase
   mix, strided with phase changes) run through the full Hierarchy and
   through Multicachesim; per-level hit/miss counts must match the golden
   values checked in below. The traces are built right here from fixed
   arithmetic — no dependency on the workload generators — so any change in
   these counts means the cache substrate itself changed behaviour. *)

let block = 64

(* A linear-congruential generator (constants from Numerical Recipes) keeps
   the "random" component reproducible forever. *)
let lcg state = ((state * 1664525) + 1013904223) land 0x3FFFFFFF

let streaming_trace n =
  (* Sequential sweep over a 256 KiB buffer, wrapping. *)
  Array.init n (fun i -> i * 8 mod (256 * 1024))

let mixed_trace n =
  (* Phases of: zipf-ish hot set, pointer chasing (LCG), stack-like reuse. *)
  let state = ref 12345 in
  Array.init n (fun i ->
      match i / 1000 mod 3 with
      | 0 -> i mod 64 * block (* hot set: 64 blocks *)
      | 1 ->
        state := lcg !state;
        (!state mod (1024 * 1024)) land lnot 7
      | _ -> (n - i) mod 512 * 16)

let strided_trace n =
  (* Stride sweeps whose stride grows each phase: 8, 64, 256, 1024 bytes. *)
  Array.init n (fun i ->
      let phase = i / 2000 mod 4 in
      let stride = [| 8; 64; 256; 1024 |].(phase) in
      i mod 2000 * stride mod (2 * 1024 * 1024))

let traces = [ ("streaming", streaming_trace 12_000); ("mixed", mixed_trace 12_000); ("strided", strided_trace 12_000) ]

let l1 = Cache.config ~sets:64 ~ways:8 ()
let l2 = Cache.config ~sets:256 ~ways:8 ()
let l3 = Cache.config ~sets:512 ~ways:16 ()

(* Golden per-level (accesses, hits, misses), produced by this exact
   configuration at the time the test was written. Regenerate with
   CACHEBOX_PRINT_GOLDEN=1 — but only after convincing yourself the
   behaviour change is intentional. *)
let golden_hierarchy =
  [
    ("streaming", [ ("L1", 12000, 10500, 1500); ("L2", 1500, 0, 1500); ("L3", 1500, 0, 1500) ]);
    ("mixed", [ ("L1", 12000, 7554, 4446); ("L2", 4446, 646, 3800); ("L3", 3800, 122, 3678) ]);
    ("strided", [ ("L1", 12000, 4000, 8000); ("L2", 8000, 2000, 6000); ("L3", 6000, 875, 5125) ]);
  ]

(* Multicachesim with the L1 geometry must miss exactly as often as the
   hierarchy's L1 (the L1 never sees what sits below it). *)
let golden_mcs = [ ("streaming", 1500); ("mixed", 4446); ("strided", 8000) ]

let run_hierarchy trace =
  let h = Hierarchy.create ~l2 ~l3 ~l1 () in
  Hierarchy.run h trace;
  List.map
    (fun (lvl, (s : Cache.stats)) ->
      (Hierarchy.level_name lvl, s.Cache.accesses, s.Cache.hits, s.Cache.misses))
    (Hierarchy.stats h)

let print_golden () =
  List.iter
    (fun (name, trace) ->
      Printf.printf "(%S, [" name;
      List.iter
        (fun (l, a, h, m) -> Printf.printf " (%S, %d, %d, %d);" l a h m)
        (run_hierarchy trace);
      let m = Multicachesim.create ~sets:64 ~ways:8 ~block_bytes:block in
      let misses = Multicachesim.run m trace in
      Printf.printf " ]);  (* mcs misses: %d *)\n" misses)
    traces

let () = if Sys.getenv_opt "CACHEBOX_PRINT_GOLDEN" <> None then print_golden ()

let quad a b c d =
  Alcotest.testable
    (fun ppf (w, x, y, z) ->
      Format.fprintf ppf "(%a, %a, %a, %a)" (Alcotest.pp a) w (Alcotest.pp b) x (Alcotest.pp c) y
        (Alcotest.pp d) z)
    (fun (w1, x1, y1, z1) (w2, x2, y2, z2) ->
      Alcotest.equal a w1 w2 && Alcotest.equal b x1 x2 && Alcotest.equal c y1 y2
      && Alcotest.equal d z1 z2)

let levels = Alcotest.list (quad Alcotest.string Alcotest.int Alcotest.int Alcotest.int)

let test_hierarchy_golden name () =
  let trace = List.assoc name traces in
  let got = run_hierarchy trace in
  Alcotest.check levels (name ^ " per-level stats") (List.assoc name golden_hierarchy) got

let test_mcs_golden name () =
  let trace = List.assoc name traces in
  let m = Multicachesim.create ~sets:64 ~ways:8 ~block_bytes:block in
  Alcotest.(check int) (name ^ " mcs misses") (List.assoc name golden_mcs) (Multicachesim.run m trace)

let test_mcs_matches_l1 name () =
  (* Structural cross-check, independent of the pinned numbers: the two
     simulator implementations must agree on the L1 miss count. *)
  let trace = List.assoc name traces in
  let l1_misses =
    match run_hierarchy trace with
    | ("L1", _, _, m) :: _ -> m
    | _ -> Alcotest.fail "hierarchy did not report L1 first"
  in
  let m = Multicachesim.create ~sets:64 ~ways:8 ~block_bytes:block in
  Alcotest.(check int) (name ^ " L1 misses agree") l1_misses (Multicachesim.run m trace)

let suite =
  ( "golden-trace",
    List.concat_map
      (fun (name, _) ->
        [
          Alcotest.test_case (name ^ " hierarchy") `Quick (test_hierarchy_golden name);
          Alcotest.test_case (name ^ " multicachesim") `Quick (test_mcs_golden name);
          Alcotest.test_case (name ^ " mcs = hierarchy L1") `Quick (test_mcs_matches_l1 name);
        ])
      traces )
