(* Heatmap pipeline: mass conservation, geometry, overlap semantics, and
   the de-overlapped hit-rate computation of paper §4.4. *)

let small_spec = Heatmap.spec ~height:8 ~width:4 ~window:5 ~overlap:0.0 ~granularity:64 ()
let overlap_spec = Heatmap.spec ~height:8 ~width:10 ~window:5 ~overlap:0.3 ~granularity:64 ()

let random_trace seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Prng.int rng 100_000)

let test_geometry () =
  Alcotest.(check int) "accesses per image" 20 (Heatmap.accesses_per_image small_spec);
  Alcotest.(check int) "no-overlap step" 20 (Heatmap.step_accesses small_spec);
  Alcotest.(check int) "overlap columns" 3 (Heatmap.overlap_columns overlap_spec);
  Alcotest.(check int) "overlap step" 35 (Heatmap.step_accesses overlap_spec)

let test_image_count () =
  Alcotest.(check int) "one image" 1 (Heatmap.image_count small_spec 20);
  Alcotest.(check int) "two images" 2 (Heatmap.image_count small_spec 40);
  Alcotest.(check int) "partial tail dropped" 2 (Heatmap.image_count small_spec 59);
  Alcotest.check_raises "short trace"
    (Invalid_argument
       "Heatmap.image_count: trace of 10 accesses is shorter than one image (20)")
    (fun () -> ignore (Heatmap.image_count small_spec 10))

let test_mass_conservation =
  QCheck.Test.make ~name:"pixel mass = covered accesses" ~count:50 QCheck.small_int
    (fun seed ->
      let trace = random_trace seed 20 in
      match Heatmap.of_trace small_spec trace with
      | [ img ] -> Float.abs (Tensor.sum img -. 20.0) < 1e-4
      | _ -> false)

let test_modulo_mapping () =
  (* All accesses to one block land on one row. *)
  let trace = Array.make 20 (64 * 9) in
  (match Heatmap.of_trace small_spec trace with
  | [ img ] ->
    (* block 9 mod 8 = row 1; each column holds one window of 5. *)
    for col = 0 to 3 do
      Alcotest.(check (float 1e-5)) "concentrated" 5.0 (Tensor.get2 img 1 col)
    done;
    Alcotest.(check (float 1e-5)) "elsewhere zero" 0.0 (Tensor.get2 img 0 0)
  | _ -> Alcotest.fail "expected one image")

let test_granularity_folds_blocks () =
  let spec = Heatmap.spec ~height:8 ~width:1 ~window:4 ~overlap:0.0 ~granularity:64 () in
  (* Two addresses in the same 64B block map to the same row. *)
  let trace = [| 0; 32; 63; 64 |] in
  match Heatmap.of_trace spec trace with
  | [ img ] ->
    Alcotest.(check (float 1e-5)) "block 0 row" 3.0 (Tensor.get2 img 0 0);
    Alcotest.(check (float 1e-5)) "block 1 row" 1.0 (Tensor.get2 img 1 0)
  | _ -> Alcotest.fail "expected one image"

let test_overlap_duplicates_columns () =
  let trace = random_trace 7 (Heatmap.accesses_per_image overlap_spec + Heatmap.step_accesses overlap_spec) in
  match Heatmap.of_trace overlap_spec trace with
  | [ a; b ] ->
    let ov = Heatmap.overlap_columns overlap_spec in
    (* First [ov] columns of image 2 equal the last [ov] columns of image 1. *)
    for col = 0 to ov - 1 do
      for row = 0 to 7 do
        Alcotest.(check (float 1e-5)) "shared columns"
          (Tensor.get2 a row (overlap_spec.Heatmap.width - ov + col))
          (Tensor.get2 b row col)
      done
    done
  | _ -> Alcotest.fail "expected two images"

let test_filtered_counts_only_kept () =
  let trace = Array.init 20 (fun i -> i * 64) in
  let keep = Array.init 20 (fun i -> i mod 2 = 0) in
  match Heatmap.of_trace_filtered small_spec ~addresses:trace ~keep with
  | [ img ] -> Alcotest.(check (float 1e-5)) "half the mass" 10.0 (Tensor.sum img)
  | _ -> Alcotest.fail "expected one image"

let test_pair_alignment =
  QCheck.Test.make ~name:"miss <= access pixelwise" ~count:30 QCheck.small_int
    (fun seed ->
      let trace = random_trace seed 40 in
      let rng = Prng.create (seed + 1) in
      let hits = Array.init 40 (fun _ -> Prng.bool rng) in
      let pairs = Heatmap.pair_of_trace small_spec ~addresses:trace ~hits in
      List.for_all
        (fun (access, miss) ->
          let ok = ref true in
          for i = 0 to Tensor.numel access - 1 do
            if Tensor.get miss i > Tensor.get access i +. 1e-6 then ok := false
          done;
          !ok)
        pairs)

let test_deoverlap_counts_once () =
  (* With 30% overlap, total de-overlapped mass equals the number of
     accesses covered by image starts (no double counting). *)
  let n = Heatmap.accesses_per_image overlap_spec + (2 * Heatmap.step_accesses overlap_spec) in
  let trace = random_trace 11 n in
  let imgs = Heatmap.of_trace overlap_spec trace in
  Alcotest.(check int) "three images" 3 (List.length imgs);
  Alcotest.(check (float 1e-3)) "each access counted once" (float_of_int n)
    (Heatmap.deoverlapped_sum overlap_spec imgs)

let test_hit_rate_extremes () =
  let trace = random_trace 13 40 in
  let all_hits = Array.make 40 true in
  let pairs = Heatmap.pair_of_trace small_spec ~addresses:trace ~hits:all_hits in
  let access = List.map fst pairs and miss = List.map snd pairs in
  Alcotest.(check (float 1e-6)) "no misses -> hit rate 1" 1.0
    (Heatmap.hit_rate small_spec ~access ~miss);
  let no_hits = Array.make 40 false in
  let pairs = Heatmap.pair_of_trace small_spec ~addresses:trace ~hits:no_hits in
  let access = List.map fst pairs and miss = List.map snd pairs in
  Alcotest.(check (float 1e-6)) "all misses -> hit rate 0" 0.0
    (Heatmap.hit_rate small_spec ~access ~miss)

let test_hit_rate_matches_simulator =
  (* End-to-end: heatmap-derived hit rate equals the simulator's, when the
     trace length is an exact multiple of the image size. *)
  QCheck.Test.make ~name:"heatmap hit rate = simulator hit rate" ~count:20
    QCheck.small_int (fun seed ->
      let spec = small_spec in
      let trace =
        let rng = Prng.create seed in
        Array.init 60 (fun _ -> Prng.int rng 64 * 64)
      in
      let cache = Cache.create (Cache.config ~sets:2 ~ways:2 ()) in
      let hits = Array.map (fun a -> Cache.access cache a) trace in
      let pairs = Heatmap.pair_of_trace spec ~addresses:trace ~hits in
      let access = List.map fst pairs and miss = List.map snd pairs in
      let hm_rate = Heatmap.hit_rate spec ~access ~miss in
      let true_rate = Cache.hit_rate (Cache.stats cache) in
      Float.abs (hm_rate -. true_rate) < 1e-6)

let test_render_ascii () =
  let img = Tensor.of_array [| 2; 2 |] [| 0.; 1.; 2.; 4. |] in
  let s = Heatmap.render_ascii ~max_rows:2 ~max_cols:2 img in
  Alcotest.(check bool) "has border" true (String.length s > 0 && s.[0] = '+');
  Alcotest.(check bool) "peak is darkest" true (String.contains s '@')

let test_write_pgm () =
  let img = Tensor.of_array [| 2; 3 |] [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  let path = Filename.temp_file "cbox" ".pgm" in
  Heatmap.write_pgm path img;
  let ic = open_in_bin path in
  let magic = really_input_string ic 2 in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "P5 header" "P5" magic

let test_spec_validation () =
  Alcotest.check_raises "bad overlap"
    (Invalid_argument "Heatmap.spec: overlap must be in [0, 1)") (fun () ->
      ignore (Heatmap.spec ~overlap:1.0 ()))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "heatmap",
    [
      Alcotest.test_case "geometry" `Quick test_geometry;
      Alcotest.test_case "image count" `Quick test_image_count;
      Alcotest.test_case "modulo mapping" `Quick test_modulo_mapping;
      Alcotest.test_case "granularity folds blocks" `Quick test_granularity_folds_blocks;
      Alcotest.test_case "overlap duplicates columns" `Quick test_overlap_duplicates_columns;
      Alcotest.test_case "filter counts kept only" `Quick test_filtered_counts_only_kept;
      Alcotest.test_case "deoverlap counts once" `Quick test_deoverlap_counts_once;
      Alcotest.test_case "hit rate extremes" `Quick test_hit_rate_extremes;
      Alcotest.test_case "ascii render" `Quick test_render_ascii;
      Alcotest.test_case "pgm writer" `Quick test_write_pgm;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      qc test_mass_conservation;
      qc test_pair_alignment;
      qc test_hit_rate_matches_simulator;
    ] )
