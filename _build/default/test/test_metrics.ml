(* Evaluation metrics. *)

let feq tol = Alcotest.(check (float tol))

let test_abs_pct_diff () =
  feq 1e-9 "five points" 5.0 (Metrics.abs_pct_diff ~truth:0.90 ~predicted:0.85);
  feq 1e-9 "symmetric" 5.0 (Metrics.abs_pct_diff ~truth:0.85 ~predicted:0.90);
  feq 1e-9 "zero" 0.0 (Metrics.abs_pct_diff ~truth:0.5 ~predicted:0.5)

let test_mean_stddev () =
  feq 1e-9 "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  feq 1e-9 "mean empty" 0.0 (Metrics.mean []);
  feq 1e-9 "stddev" 1.0 (Metrics.stddev [ 1.0; 2.0; 3.0 ]);
  feq 1e-9 "stddev singleton" 0.0 (Metrics.stddev [ 5.0 ])

let test_mse () =
  let a = Tensor.of_array [| 4 |] [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.of_array [| 4 |] [| 1.; 2.; 3.; 4. |] in
  feq 1e-9 "identical" 0.0 (Metrics.mse a b);
  let c = Tensor.of_array [| 4 |] [| 0.; 2.; 3.; 6. |] in
  feq 1e-6 "mse value" 1.25 (Metrics.mse a c)

let test_ssim_identical =
  QCheck.Test.make ~name:"ssim(x, x) = 1" ~count:30 QCheck.small_int (fun seed ->
      let img = Tensor.randn (Prng.create seed) [| 16; 16 |] in
      Float.abs (Metrics.ssim img img -. 1.0) < 1e-3)

let test_ssim_range =
  QCheck.Test.make ~name:"ssim in [-1, 1]" ~count:30 QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let a = Tensor.randn rng [| 16; 16 |] and b = Tensor.randn rng [| 16; 16 |] in
      let s = Metrics.ssim a b in
      s >= -1.0 && s <= 1.0 +. 1e-6)

let test_ssim_discriminates () =
  let rng = Prng.create 5 in
  let a = Tensor.randn rng [| 16; 16 |] in
  let near = Tensor.map (fun v -> v +. 0.01) a in
  let far = Tensor.randn rng [| 16; 16 |] in
  Alcotest.(check bool) "closer image scores higher" true
    (Metrics.ssim a near > Metrics.ssim a far)

let test_ssim_symmetric () =
  let rng = Prng.create 6 in
  let a = Tensor.randn rng [| 16; 16 |] and b = Tensor.randn rng [| 16; 16 |] in
  feq 1e-5 "symmetry" (Metrics.ssim a b) (Metrics.ssim b a)

let test_histogram () =
  let h = Metrics.histogram ~bins:4 ~lo:0.0 ~hi:1.0 [ 0.1; 0.1; 0.6; 0.95; 1.5; -0.2 ] in
  Alcotest.(check int) "total count" 6 (Array.fold_left ( + ) 0 h.Metrics.counts);
  Alcotest.(check int) "first bin (incl clamp below)" 3 h.Metrics.counts.(0);
  Alcotest.(check int) "last bin (incl clamp above)" 2 h.Metrics.counts.(3);
  let s = Metrics.render_histogram h in
  Alcotest.(check bool) "renders bars" true (String.length s > 0)

let test_histogram_validation () =
  Alcotest.check_raises "bins positive"
    (Invalid_argument "Metrics.histogram: bins must be positive") (fun () ->
      ignore (Metrics.histogram ~bins:0 ~lo:0.0 ~hi:1.0 []))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "metrics",
    [
      Alcotest.test_case "abs pct diff" `Quick test_abs_pct_diff;
      Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
      Alcotest.test_case "mse" `Quick test_mse;
      Alcotest.test_case "ssim discriminates" `Quick test_ssim_discriminates;
      Alcotest.test_case "ssim symmetric" `Quick test_ssim_symmetric;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
      qc test_ssim_identical;
      qc test_ssim_range;
    ] )
