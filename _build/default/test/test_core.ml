(* The CacheBox core: dataset construction, CB-GAN shapes and persistence,
   and a minimal end-to-end train/infer loop. Kept at a tiny scale so the
   suite stays fast. *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()
let tiny_cache = Cache.config ~sets:4 ~ways:2 ()

let tiny_workload name seed =
  Workload.make ~name ~suite:Workload.Spec ~group:name (fun n ->
      let rng = Prng.create seed in
      Array.init n (fun i ->
          if Prng.float rng 1.0 < 0.7 then (i mod 32) * 8 else Prng.int rng 8192 * 64))

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

(* --- dataset --- *)

let test_normalize_roundtrip =
  QCheck.Test.make ~name:"denormalize . normalize = id on counts" ~count:50
    QCheck.(int_range 0 8)
    (fun count ->
      let img = Tensor.full [| 16; 16 |] (float_of_int count) in
      let back = Cbox_dataset.denormalize tiny_spec (Cbox_dataset.normalize tiny_spec img) in
      Float.abs (Tensor.get back 0 -. float_of_int count) < 1e-3)

let test_normalize_bounds () =
  let img = Tensor.of_array [| 1; 2 |] [| 0.0; 8.0 |] in
  let n = Cbox_dataset.normalize tiny_spec img in
  Alcotest.(check (float 1e-5)) "zero -> -1" (-1.0) (Tensor.get n 0);
  Alcotest.(check (float 1e-4)) "window -> 1" 1.0 (Tensor.get n 1)

let test_batch_images_shape () =
  let imgs = List.init 3 (fun _ -> Tensor.zeros [| 16; 16 |]) in
  let b = Cbox_dataset.batch_images tiny_spec imgs in
  Alcotest.(check (array int)) "nchw" [| 3; 1; 16; 16 |] (Tensor.shape b)

let test_build_l1 () =
  let data =
    Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:600
      [ tiny_workload "w1" 1; tiny_workload "w2" 2 ]
  in
  Alcotest.(check int) "one entry per workload x config" 2 (List.length data);
  List.iter
    (fun (d : Cbox_dataset.benchmark_data) ->
      Alcotest.(check bool) "has pairs" true (List.length d.pairs >= 1);
      Alcotest.(check bool) "hit rate in range" true
        (d.true_hit_rate >= 0.0 && d.true_hit_rate <= 1.0);
      List.iter
        (fun (access, miss) ->
          Alcotest.(check bool) "miss mass <= access mass" true
            (Tensor.sum miss <= Tensor.sum access +. 1e-3))
        d.pairs)
    data

let test_build_l1_truth_matches_cache () =
  (* The de-overlapped heatmap hit rate must equal a direct simulation over
     the covered prefix of the trace. *)
  let w = tiny_workload "w3" 3 in
  let data = Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:600 [ w ] in
  match data with
  | [ d ] ->
    let covered =
      Heatmap.accesses_per_image tiny_spec
      + ((List.length d.pairs - 1) * Heatmap.step_accesses tiny_spec)
    in
    let trace = w.Workload.generate 600 in
    let cache = Cache.create tiny_cache in
    let hits = ref 0 in
    for i = 0 to covered - 1 do
      if Cache.access cache trace.(i) then incr hits
    done;
    Alcotest.(check (float 1e-6)) "truth matches direct simulation"
      (float_of_int !hits /. float_of_int covered)
      d.true_hit_rate
  | _ -> Alcotest.fail "expected one entry"

let test_build_hierarchy_exclusion () =
  (* With a tiny trace, deeper levels see too few accesses and are dropped. *)
  let data =
    Cbox_dataset.build_hierarchy tiny_spec ~l1:tiny_cache
      ~l2:(Cache.config ~sets:8 ~ways:4 ())
      ~l3:(Cache.config ~sets:16 ~ways:4 ())
      ~trace_len:600
      [ tiny_workload "w4" 4 ]
  in
  Alcotest.(check bool) "L1 present" true
    (List.exists (fun (d : Cbox_dataset.benchmark_data) -> d.level = Hierarchy.L1) data);
  List.iter
    (fun (d : Cbox_dataset.benchmark_data) ->
      let min_len = Heatmap.accesses_per_image tiny_spec in
      ignore min_len;
      Alcotest.(check bool) "only levels with enough data" true (List.length d.pairs >= 1))
    data

let test_build_prefetch () =
  let data =
    Cbox_dataset.build_prefetch tiny_spec ~config:tiny_cache ~kind:Prefetch.Next_line
      ~trace_len:600 [ tiny_workload "w5" 5 ]
  in
  match data with
  | [ d ] ->
    List.iter
      (fun (access, pf) ->
        Alcotest.(check bool) "prefetch mass <= access mass" true
          (Tensor.sum pf <= Tensor.sum access +. 1e-3))
      d.pairs
  | _ -> Alcotest.fail "expected one entry"

let test_to_samples_and_shuffle () =
  let data = Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:600 [ tiny_workload "w6" 6 ] in
  let samples = Cbox_dataset.to_samples data in
  Alcotest.(check int) "one sample per pair"
    (List.fold_left (fun acc (d : Cbox_dataset.benchmark_data) -> acc + List.length d.pairs) 0 data)
    (List.length samples);
  let shuffled = Cbox_dataset.shuffle (Prng.create 1) samples in
  Alcotest.(check int) "shuffle preserves count" (List.length samples) (List.length shuffled)

(* --- CB-GAN --- *)

let test_generator_shapes () =
  let model = Cbgan.create ~seed:1 tiny_model_config in
  let rng = Prng.create 2 in
  let x = Tensor.randn rng [| 2; 1; 16; 16 |] in
  let cp = Cbgan.cache_params_tensor [ tiny_cache; tiny_cache ] in
  let y = Cbgan.generator_forward model ~rng ~training:false ~cache_params:cp x in
  Alcotest.(check (array int)) "output shape" [| 2; 1; 16; 16 |] (Tensor.shape (Value.value y));
  let vals = Tensor.to_array (Value.value y) in
  Alcotest.(check bool) "tanh range" true (Array.for_all (fun v -> v >= -1.0 && v <= 1.0) vals)

let test_discriminator_shapes () =
  let model = Cbgan.create ~seed:1 tiny_model_config in
  let rng = Prng.create 2 in
  let x = Tensor.randn rng [| 2; 1; 16; 16 |] in
  let y = Value.const (Tensor.randn rng [| 2; 1; 16; 16 |]) in
  let d = Cbgan.discriminator_forward model ~training:false ~access:x ~miss:y in
  let shape = Tensor.shape (Value.value d) in
  Alcotest.(check int) "batch preserved" 2 shape.(0);
  Alcotest.(check int) "single logit channel" 1 shape.(1);
  Alcotest.(check bool) "patch map is spatial" true (shape.(2) > 1 && shape.(3) > 1)

let test_cache_params_required () =
  let model = Cbgan.create ~seed:1 tiny_model_config in
  let rng = Prng.create 2 in
  let x = Tensor.randn rng [| 1; 1; 16; 16 |] in
  Alcotest.check_raises "params required"
    (Invalid_argument "Cbgan.generator_forward: cache parameters required") (fun () ->
      ignore (Cbgan.generator_forward model ~rng ~training:false x))

let test_no_params_model () =
  let cfg = { tiny_model_config with Cbgan.use_cache_params = false } in
  let model = Cbgan.create ~seed:1 cfg in
  let rng = Prng.create 2 in
  let x = Tensor.randn rng [| 1; 1; 16; 16 |] in
  let y = Cbgan.generator_forward model ~rng ~training:false x in
  Alcotest.(check (array int)) "works without params" [| 1; 1; 16; 16 |]
    (Tensor.shape (Value.value y))

let test_normalize_cache_params () =
  let s, w = Cbgan.normalize_cache_params (Cache.config ~sets:64 ~ways:12 ()) in
  Alcotest.(check (float 1e-6)) "log sets scale" 0.5 s;
  Alcotest.(check (float 1e-6)) "ways scale" 0.75 w

let test_save_load_roundtrip () =
  let model = Cbgan.create ~seed:1 tiny_model_config in
  let rng = Prng.create 2 in
  let x = Tensor.randn rng [| 1; 1; 16; 16 |] in
  let cp = Cbgan.cache_params_tensor [ tiny_cache ] in
  let before = Tensor.to_array (Value.value (Cbgan.generator_forward model ~rng ~training:false ~cache_params:cp x)) in
  let path = Filename.temp_file "cbgan" ".ckpt" in
  Cbgan.save model path;
  let fresh = Cbgan.create ~seed:99 tiny_model_config in
  Cbgan.load fresh path;
  Sys.remove path;
  let after = Tensor.to_array (Value.value (Cbgan.generator_forward fresh ~rng ~training:false ~cache_params:cp x)) in
  Alcotest.(check (array (float 1e-5))) "identical outputs after reload" before after

let test_parameter_count_positive () =
  let model = Cbgan.create ~seed:1 tiny_model_config in
  Alcotest.(check bool) "has parameters" true (Cbgan.parameter_count model > 1000)

(* --- train / infer --- *)

let test_training_reduces_l1 () =
  let data = Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:2000
      [ tiny_workload "t1" 11; tiny_workload "t2" 12 ]
  in
  let model = Cbgan.create ~seed:3 tiny_model_config in
  let options = { (Cbox_train.default_options ~epochs:6 ~batch_size:4 ()) with Cbox_train.lr = 1e-3 } in
  let history = Cbox_train.train model tiny_spec options (Cbox_dataset.to_samples data) in
  Alcotest.(check int) "one entry per epoch" 6 (List.length history);
  let first = List.hd history and last = List.nth history 5 in
  Alcotest.(check bool) "L1 decreased" true (last.Cbox_train.g_l1 < first.Cbox_train.g_l1)

let test_inference_predictions () =
  let data = Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:1200 [ tiny_workload "t3" 13 ] in
  let model = Cbgan.create ~seed:3 tiny_model_config in
  let preds = Cbox_infer.predict_all model tiny_spec data in
  List.iter
    (fun (p : Cbox_infer.prediction) ->
      Alcotest.(check bool) "prediction in [0,1]" true
        (p.predicted_hit_rate >= 0.0 && p.predicted_hit_rate <= 1.0);
      List.iter
        (fun img ->
          Alcotest.(check bool) "synthetic counts non-negative and integral" true
            (Array.for_all (fun v -> v >= 0.0 && Float.is_integer v) (Tensor.to_array img)))
        p.synthetic)
    preds

let test_synthesize_batch_invariance () =
  (* Different batch sizes must produce identical predictions image-by-image
     up to batch-norm batch statistics; with a single image per batch vs all
     at once the outputs stay close. *)
  let data = Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:1200 [ tiny_workload "t4" 14 ] in
  let model = Cbgan.create ~seed:3 tiny_model_config in
  match data with
  | [ d ] ->
    let access = List.map fst d.pairs in
    let s1 = Cbox_infer.synthesize model tiny_spec ~batch_size:1 ~cache:tiny_cache access in
    let s4 = Cbox_infer.synthesize model tiny_spec ~batch_size:4 ~cache:tiny_cache access in
    Alcotest.(check int) "same count" (List.length s1) (List.length s4)
  | _ -> Alcotest.fail "expected one entry"

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "cachebox core",
    [
      Alcotest.test_case "normalize bounds" `Quick test_normalize_bounds;
      Alcotest.test_case "batch shape" `Quick test_batch_images_shape;
      Alcotest.test_case "build_l1" `Quick test_build_l1;
      Alcotest.test_case "ground truth matches simulator" `Quick test_build_l1_truth_matches_cache;
      Alcotest.test_case "hierarchy exclusion" `Quick test_build_hierarchy_exclusion;
      Alcotest.test_case "prefetch pairs" `Quick test_build_prefetch;
      Alcotest.test_case "to_samples/shuffle" `Quick test_to_samples_and_shuffle;
      Alcotest.test_case "generator shapes" `Quick test_generator_shapes;
      Alcotest.test_case "discriminator shapes" `Quick test_discriminator_shapes;
      Alcotest.test_case "cache params required" `Quick test_cache_params_required;
      Alcotest.test_case "model without params" `Quick test_no_params_model;
      Alcotest.test_case "param normalisation" `Quick test_normalize_cache_params;
      Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
      Alcotest.test_case "parameter count" `Quick test_parameter_count_positive;
      Alcotest.test_case "training reduces L1" `Slow test_training_reduces_l1;
      Alcotest.test_case "inference predictions" `Quick test_inference_predictions;
      Alcotest.test_case "batch-size invariance" `Quick test_synthesize_batch_invariance;
      qc test_normalize_roundtrip;
    ] )
