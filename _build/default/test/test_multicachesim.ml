(* The fast baseline simulator must agree exactly with the reference LRU
   cache model — it is the same semantics, only optimised. *)

let test_agrees_with_reference =
  QCheck.Test.make ~name:"multicachesim = Cache (LRU)" ~count:80
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 500) (int_range 0 2000))
        (int_range 0 3) (int_range 1 8))
    (fun (bs, sets_log, ways) ->
      let sets = 1 lsl sets_log in
      let trace = Array.of_list (List.map (fun b -> b * 64) bs) in
      let reference = Cache.create (Cache.config ~sets ~ways ()) in
      let ref_misses =
        Array.fold_left
          (fun acc a -> if Cache.access reference a then acc else acc + 1)
          0 trace
      in
      let m = Multicachesim.create ~sets ~ways ~block_bytes:64 in
      Multicachesim.run m trace = ref_misses)

let test_hit_rate () =
  let m = Multicachesim.create ~sets:2 ~ways:1 ~block_bytes:64 in
  let misses = Multicachesim.run m [| 0; 0; 0; 64 |] in
  Alcotest.(check int) "two misses" 2 misses;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Multicachesim.hit_rate m)

let test_state_persists_and_resets () =
  let m = Multicachesim.create ~sets:2 ~ways:1 ~block_bytes:64 in
  ignore (Multicachesim.run m [| 0 |]);
  Alcotest.(check int) "warm hit" 0 (Multicachesim.run m [| 0 |]);
  Multicachesim.reset m;
  Alcotest.(check int) "cold after reset" 1 (Multicachesim.run m [| 0 |])

let test_validation () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Multicachesim.create: sets must be power of two") (fun () ->
      ignore (Multicachesim.create ~sets:3 ~ways:1 ~block_bytes:64))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "multicachesim",
    [
      Alcotest.test_case "hit rate" `Quick test_hit_rate;
      Alcotest.test_case "state persists / resets" `Quick test_state_persists_and_resets;
      Alcotest.test_case "validation" `Quick test_validation;
      qc test_agrees_with_reference;
    ] )
