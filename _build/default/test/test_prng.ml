(* Tests for the deterministic PRNG: reproducibility, ranges, and the
   statistical sanity of the derived distributions. *)

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_of_label () =
  let a = Prng.of_label "gemm.small" and b = Prng.of_label "gemm.small" in
  Alcotest.(check int64) "label determinism" (Prng.next_int64 a) (Prng.next_int64 b);
  let c = Prng.of_label "gemm.large" in
  Alcotest.(check bool) "labels differ" true (Prng.next_int64 c <> Prng.next_int64 (Prng.of_label "gemm.small"))

let test_split_independence () =
  let g = Prng.create 7 in
  let child = Prng.split g in
  let xs = Array.init 32 (fun _ -> Prng.next_int64 g) in
  let ys = Array.init 32 (fun _ -> Prng.next_int64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_range =
  QCheck.Test.make ~name:"int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let test_float_range =
  QCheck.Test.make ~name:"float stays in range" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Prng.create seed in
      let v = Prng.float g 3.5 in
      v >= 0.0 && v < 3.5)

let test_gauss_moments () =
  let g = Prng.create 99 in
  let n = 20_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gauss g in
    sum := !sum +. v;
    sum2 := !sum2 +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_zipf_bounds =
  QCheck.Test.make ~name:"zipf stays in range" ~count:300
    QCheck.(pair small_int (int_range 1 5000))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let v = Prng.zipf g ~n ~s:1.1 in
      v >= 0 && v < n)

let test_zipf_skew () =
  let g = Prng.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let v = Prng.zipf g ~n:100 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 is hottest" true
    (counts.(0) > counts.(10) && counts.(0) > counts.(50))

let test_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 50) int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let orig = Array.copy a in
      Prng.shuffle (Prng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list orig))

let test_uniform_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 200 do
    let v = Prng.uniform g ~lo:(-2.0) ~hi:5.0 in
    Alcotest.(check bool) "in bounds" true (v >= -2.0 && v < 5.0)
  done

let test_pick () =
  let g = Prng.create 4 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Prng.pick g a) a)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let test_int_invalid () =
  let g = Prng.create 1 in
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "of_label" `Quick test_of_label;
      Alcotest.test_case "split independence" `Quick test_split_independence;
      Alcotest.test_case "gauss moments" `Quick test_gauss_moments;
      Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
      Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
      Alcotest.test_case "pick" `Quick test_pick;
      Alcotest.test_case "int invalid" `Quick test_int_invalid;
      qc test_int_range;
      qc test_float_range;
      qc test_zipf_bounds;
      qc test_shuffle_is_permutation;
    ] )

let () = ignore check_float
