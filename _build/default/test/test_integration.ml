(* Cross-module integration: the seams between the simulator, the heatmap
   pipeline, the dataset builder and the experiment drivers. *)

let spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let test_l2_heatmap_mass_is_l1_misses () =
  (* The de-overlapped mass of the L2 access heatmaps equals the number of
     L1 misses covered by those heatmaps. *)
  let w = Suite.find "605.mcf_s-734B" in
  let trace = w.Workload.generate 4000 in
  let h =
    Hierarchy.create ~l2:(Cache.config ~sets:8 ~ways:4 ())
      ~l1:(Cache.config ~sets:4 ~ways:2 ()) ()
  in
  Hierarchy.run h trace;
  match Hierarchy.level_traces h with
  | [ _; l2 ] ->
    let n = Array.length l2.Hierarchy.addresses in
    Alcotest.(check bool) "enough L2 traffic" true (n >= Heatmap.accesses_per_image spec);
    let imgs = Heatmap.of_trace spec l2.Hierarchy.addresses in
    let covered =
      Heatmap.accesses_per_image spec
      + ((List.length imgs - 1) * Heatmap.step_accesses spec)
    in
    Alcotest.(check (float 1e-3)) "mass = covered accesses" (float_of_int covered)
      (Heatmap.deoverlapped_sum spec imgs)
  | _ -> Alcotest.fail "expected two levels"

let test_trace_io_pipeline_equivalence () =
  (* Importing an exported trace and rebuilding heatmaps gives identical
     images. *)
  let w = Suite.find "atax.small" in
  let trace = w.Workload.generate 3000 in
  let path = Filename.temp_file "cbox" ".btrace" in
  Trace_io.write_binary path trace;
  let imported = Trace_io.read_auto path in
  Sys.remove path;
  let direct = Heatmap.of_trace spec trace in
  let via_file = Heatmap.of_trace spec imported in
  List.iter2
    (fun a b ->
      Alcotest.(check (array (float 0.0))) "identical heatmaps" (Tensor.to_array a)
        (Tensor.to_array b))
    direct via_file

let test_experiments_helpers () =
  let row mk_truth mk_pred =
    {
      Experiments.benchmark = "x";
      suite = Workload.Spec;
      config_name = "64set-12way";
      level = Hierarchy.L1;
      truth = mk_truth;
      predicted = mk_pred;
    }
  in
  Alcotest.(check (float 1e-9)) "row abs pct" 5.0
    (Experiments.row_abs_pct (row 0.9 0.85));
  let r = Experiments.summarize "s" [ row 0.9 0.85; row 0.8 0.83 ] in
  Alcotest.(check (float 1e-6)) "summary average" 4.0 r.Experiments.avg_abs_pct;
  Alcotest.(check (float 1e-9)) "L1 threshold" 0.65
    (Experiments.hit_rate_threshold Hierarchy.L1);
  Alcotest.(check (float 1e-9)) "L2 threshold" 0.40
    (Experiments.hit_rate_threshold Hierarchy.L2);
  Alcotest.(check (float 1e-9)) "L3 threshold" 0.35
    (Experiments.hit_rate_threshold Hierarchy.L3)

let test_experiment_configs () =
  Alcotest.(check int) "four train configs" 4 (List.length Experiments.train_configs);
  Alcotest.(check int) "three unseen configs" 3 (List.length Experiments.unseen_configs);
  (* No unseen config coincides with a training config (the point of RQ3). *)
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Cache.config_name u ^ " truly unseen")
        false
        (List.mem u Experiments.train_configs))
    Experiments.unseen_configs

let test_default_scale_env () =
  Unix.putenv "CACHEBOX_EPOCHS" "9";
  let s = Experiments.default_scale () in
  Unix.putenv "CACHEBOX_EPOCHS" "";
  Alcotest.(check int) "env override" 9 s.Experiments.epochs

let test_split_determinism () =
  let a = Suite.split ~seed:123 (Suite.all ()) in
  let b = Suite.split ~seed:123 (Suite.all ()) in
  let names ws = List.map (fun w -> w.Workload.name) ws in
  Alcotest.(check (list string)) "same train" (names a.Suite.train) (names b.Suite.train);
  let c = Suite.split ~seed:124 (Suite.all ()) in
  Alcotest.(check bool) "different seed differs" true
    (names a.Suite.train <> names c.Suite.train)

let test_fig14_histogram_totals () =
  let scale =
    { (Experiments.default_scale ()) with Experiments.trace_len = 4000 }
  in
  let h = Experiments.fig14 scale in
  let total = Array.fold_left ( + ) 0 h.Metrics.counts in
  Alcotest.(check int) "one entry per SPEC-like benchmark"
    (List.length (Suite.of_suite Workload.Spec))
    total

let test_prediction_determinism () =
  (* Same seed, same data -> bit-identical predictions. *)
  let cfg =
    { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }
  in
  let w = Suite.find "mvt.small" in
  let data =
    Cbox_dataset.build_l1 spec ~configs:[ Cache.config ~sets:4 ~ways:2 () ] ~trace_len:2000 [ w ]
  in
  let predict () =
    let model = Cbgan.create ~seed:5 cfg in
    List.map
      (fun d -> (Cbox_infer.predict model spec d).Cbox_infer.predicted_hit_rate)
      data
  in
  Alcotest.(check (list (float 0.0))) "deterministic" (predict ()) (predict ())

let suite =
  ( "integration",
    [
      Alcotest.test_case "L2 heatmaps carry L1 misses" `Quick test_l2_heatmap_mass_is_l1_misses;
      Alcotest.test_case "trace io pipeline equivalence" `Quick test_trace_io_pipeline_equivalence;
      Alcotest.test_case "experiments helpers" `Quick test_experiments_helpers;
      Alcotest.test_case "experiment configs" `Quick test_experiment_configs;
      Alcotest.test_case "scale env override" `Quick test_default_scale_env;
      Alcotest.test_case "split determinism" `Quick test_split_determinism;
      Alcotest.test_case "fig14 totals" `Quick test_fig14_histogram_totals;
      Alcotest.test_case "prediction determinism" `Quick test_prediction_determinism;
    ] )
