(* Reuse-distance engine (against a naive O(n^2) reference), the binomial
   set-associative model, and the HRD / STM / TabSynth predictors. *)

let naive_distances blocks =
  (* Stack of blocks in LRU order (most recent first). *)
  let n = Array.length blocks in
  let out = Array.make n Reuse_distance.infinite in
  let stack = ref [] in
  for i = 0 to n - 1 do
    let b = blocks.(i) in
    let rec find acc depth = function
      | [] -> (None, List.rev acc)
      | x :: rest ->
        if x = b then (Some depth, List.rev_append acc rest)
        else find (x :: acc) (depth + 1) rest
    in
    let found, without = find [] 0 !stack in
    (match found with Some d -> out.(i) <- d | None -> ());
    stack := b :: without
  done;
  out

let test_distances_vs_naive =
  QCheck.Test.make ~name:"fenwick distances = naive stack" ~count:60
    QCheck.(list_of_size Gen.(1 -- 150) (int_range 0 30))
    (fun bs ->
      let blocks = Array.of_list bs in
      let trace = Array.map (fun b -> b * 64) blocks in
      Reuse_distance.distances trace = naive_distances blocks)

let test_distances_simple () =
  (* a b c a : distance of the second a is 2 (b and c in between). *)
  let trace = [| 0; 64; 128; 0 |] in
  let d = Reuse_distance.distances trace in
  Alcotest.(check int) "cold" Reuse_distance.infinite d.(0);
  Alcotest.(check int) "distance 2" 2 d.(3)

let test_fully_associative_hit_rate =
  (* LRU stack property: hit iff distance < capacity. Cross-check with a
     fully-associative Cache (sets = 1). *)
  QCheck.Test.make ~name:"fully-assoc prediction is exact" ~count:40
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 200) (int_range 0 40)))
    (fun (ways, bs) ->
      let trace = Array.of_list (List.map (fun b -> b * 64) bs) in
      let dists = Reuse_distance.distances trace in
      let predicted = Reuse_distance.hit_rate_fully_associative ~capacity_blocks:ways dists in
      let cache = Cache.create (Cache.config ~sets:1 ~ways ()) in
      Array.iter (fun a -> ignore (Cache.access cache a)) trace;
      Float.abs (predicted -. Cache.hit_rate (Cache.stats cache)) < 1e-9)

let test_histogram () =
  let h = Reuse_distance.histogram [| 1; 1; 2; Reuse_distance.infinite |] in
  Alcotest.(check int) "entries" 3 (List.length h);
  Alcotest.(check int) "count of 1" 2 (List.assoc 1 h)

let test_binomial_extremes () =
  Alcotest.(check (float 1e-9)) "cold never hits" 0.0
    (Reuse_distance.set_associative_hit_probability ~sets:64 ~ways:8
       ~distance:Reuse_distance.infinite);
  Alcotest.(check (float 1e-9)) "distance 0 always hits" 1.0
    (Reuse_distance.set_associative_hit_probability ~sets:64 ~ways:8 ~distance:0);
  (* sets = 1 degenerates to the fully-associative rule. *)
  Alcotest.(check (float 1e-9)) "sets=1 below ways" 1.0
    (Reuse_distance.set_associative_hit_probability ~sets:1 ~ways:4 ~distance:3);
  Alcotest.(check (float 1e-9)) "sets=1 at ways" 0.0
    (Reuse_distance.set_associative_hit_probability ~sets:1 ~ways:4 ~distance:4)

let test_binomial_monotonicity () =
  (* More ways -> higher hit probability; larger distance -> lower. *)
  let p w d = Reuse_distance.set_associative_hit_probability ~sets:16 ~ways:w ~distance:d in
  Alcotest.(check bool) "ways monotone" true (p 4 32 >= p 2 32);
  Alcotest.(check bool) "distance monotone" true (p 4 16 >= p 4 64);
  let v = p 8 40 in
  Alcotest.(check bool) "probability" true (v >= 0.0 && v <= 1.0)

let test_hrd_exact_on_small_working_set () =
  (* A working set that trivially fits: HRD must predict ~the true rate. *)
  let trace = Array.concat (List.init 50 (fun _ -> [| 0; 64; 128; 192 |])) in
  let cfg = Cache.config ~sets:64 ~ways:12 () in
  let cache = Cache.create cfg in
  Array.iter (fun a -> ignore (Cache.access cache a)) trace;
  let truth = Cache.hit_rate (Cache.stats cache) in
  let predicted = Hrd.predict_l1 cfg trace in
  Alcotest.(check bool) "close to truth" true (Float.abs (truth -. predicted) < 0.02)

let test_hrd_multi_level_shape () =
  let rng = Prng.create 21 in
  let trace = Array.init 3000 (fun _ -> Prng.int rng 4096 * 64) in
  let preds =
    Hrd.predict
      ~configs:[ Cache.config ~sets:16 ~ways:4 (); Cache.config ~sets:64 ~ways:8 () ]
      trace
  in
  Alcotest.(check int) "two predictions" 2 (List.length preds);
  List.iter
    (fun p -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0))
    preds

let test_stm_profile_and_clone () =
  let trace = Array.init 2000 (fun i -> i * 8) in
  let p = Stm.profile trace in
  let clone = Stm.clone p 500 in
  Alcotest.(check int) "clone length" 500 (Array.length clone);
  (* A pure sequential trace clones into a mostly-sequential trace. *)
  let sequentialish = ref 0 in
  for i = 1 to 499 do
    if clone.(i) - clone.(i - 1) >= 0 && clone.(i) - clone.(i - 1) <= 128 then
      incr sequentialish
  done;
  Alcotest.(check bool) "clone preserves streaminess" true (!sequentialish > 350)

let test_stm_prediction_on_stream () =
  (* Streaming trace: true hit rate is high (8B stride in 64B blocks);
     STM's clone should land in the right regime. *)
  let trace = Array.init 5000 (fun i -> i * 8) in
  let cfg = Cache.config ~sets:64 ~ways:12 () in
  let cache = Cache.create cfg in
  Array.iter (fun a -> ignore (Cache.access cache a)) trace;
  let truth = Cache.hit_rate (Cache.stats cache) in
  let pred = Stm.predict cfg trace in
  Alcotest.(check bool) "within 15 points" true (Float.abs (truth -. pred) < 0.15)

let test_tabsynth_lengths_and_range =
  QCheck.Test.make ~name:"tabsynth clones are well-formed" ~count:20
    QCheck.(pair small_int (int_range 50 300))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let trace = Array.init n (fun _ -> Prng.int rng 10_000 * 8) in
      List.for_all
        (fun variant ->
          let clone = Tabsynth.synthesize ~seed ~variant trace in
          Array.length clone = n && Array.for_all (fun a -> a >= 0) clone)
        [ Tabsynth.Base; Tabsynth.Rd; Tabsynth.Ic ])

let test_tab_rd_preserves_distance_profile () =
  (* The RD sampler matches the reuse-distance histogram by construction;
     verify the hit-rate consequence: a fully-associative prediction on the
     clone is close to the original's. *)
  let rng = Prng.create 31 in
  let trace = Array.init 4000 (fun _ -> Prng.zipf rng ~n:512 ~s:1.1 * 64) in
  let clone = Tabsynth.synthesize ~variant:Tabsynth.Rd trace in
  let hr t =
    Reuse_distance.hit_rate_fully_associative ~capacity_blocks:128
      (Reuse_distance.distances t)
  in
  Alcotest.(check bool) "distance profile carried over" true
    (Float.abs (hr trace -. hr clone) < 0.08)

let test_tab_ic_preserves_deltas () =
  (* A constant-stride trace has a single delta; the Markov clone must
     reproduce it exactly. *)
  let trace = Array.init 1000 (fun i -> i * 128) in
  let clone = Tabsynth.synthesize ~variant:Tabsynth.Ic ~block_bytes:64 trace in
  let ok = ref true in
  for i = 1 to 999 do
    if clone.(i) - clone.(i - 1) <> 128 then ok := false
  done;
  Alcotest.(check bool) "stride preserved" true !ok

let test_predictions_in_range () =
  let rng = Prng.create 41 in
  let trace = Array.init 1500 (fun _ -> Prng.int rng 100_000) in
  let cfg = Cache.config ~sets:32 ~ways:4 () in
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " in [0,1]") true (p >= 0.0 && p <= 1.0))
    [
      ("hrd", Hrd.predict_l1 cfg trace);
      ("stm", Stm.predict cfg trace);
      ("tab-base", Tabsynth.predict ~variant:Tabsynth.Base cfg trace);
      ("tab-rd", Tabsynth.predict ~variant:Tabsynth.Rd cfg trace);
      ("tab-ic", Tabsynth.predict ~variant:Tabsynth.Ic cfg trace);
    ]

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "baselines",
    [
      Alcotest.test_case "distances simple" `Quick test_distances_simple;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "binomial extremes" `Quick test_binomial_extremes;
      Alcotest.test_case "binomial monotonicity" `Quick test_binomial_monotonicity;
      Alcotest.test_case "hrd exact on tiny working set" `Quick test_hrd_exact_on_small_working_set;
      Alcotest.test_case "hrd multi-level" `Quick test_hrd_multi_level_shape;
      Alcotest.test_case "stm profile/clone" `Quick test_stm_profile_and_clone;
      Alcotest.test_case "stm stream prediction" `Quick test_stm_prediction_on_stream;
      Alcotest.test_case "tab-rd distance profile" `Quick test_tab_rd_preserves_distance_profile;
      Alcotest.test_case "tab-ic delta preservation" `Quick test_tab_ic_preserves_deltas;
      Alcotest.test_case "predictions in range" `Quick test_predictions_in_range;
      qc test_distances_vs_naive;
      qc test_fully_associative_hit_rate;
      qc test_tabsynth_lengths_and_range;
    ] )
