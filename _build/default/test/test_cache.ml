(* The ground-truth cache model: exact LRU behaviour, policy differences,
   and structural invariants. *)

let cfg ?(policy = Cache.Lru) ~sets ~ways () = Cache.config ~policy ~sets ~ways ()

let addr_of_block b = b * 64

let run_trace cache blocks =
  List.map (fun b -> Cache.access cache (addr_of_block b)) blocks

let test_cold_misses () =
  let c = Cache.create (cfg ~sets:2 ~ways:2 ()) in
  Alcotest.(check (list bool)) "all cold" [ false; false; false ]
    (run_trace c [ 0; 1; 2 ])

let test_hit_on_reuse () =
  let c = Cache.create (cfg ~sets:2 ~ways:2 ()) in
  Alcotest.(check (list bool)) "second touch hits" [ false; true ] (run_trace c [ 5; 5 ])

let test_same_block_offsets_hit () =
  let c = Cache.create (cfg ~sets:2 ~ways:2 ()) in
  ignore (Cache.access c 128);
  Alcotest.(check bool) "same 64B block" true (Cache.access c 129);
  Alcotest.(check bool) "same block top" true (Cache.access c 191);
  Alcotest.(check bool) "next block misses" false (Cache.access c 192)

let test_lru_eviction_order () =
  (* 1 set, 2 ways: blocks 0,2,4 map to set 0 (sets=2 -> even blocks). *)
  let c = Cache.create (cfg ~sets:2 ~ways:2 ()) in
  ignore (run_trace c [ 0; 2 ]);
  (* touch 0 so 2 becomes LRU *)
  ignore (Cache.access c (addr_of_block 0));
  ignore (Cache.access c (addr_of_block 4));
  (* evicts 2 *)
  Alcotest.(check bool) "0 survived" true (Cache.access c (addr_of_block 0));
  Alcotest.(check bool) "2 evicted" false (Cache.access c (addr_of_block 2))

let test_fifo_vs_lru () =
  (* FIFO ignores the re-touch; the same sequence evicts 0 under FIFO but 2
     under LRU. *)
  let seq = [ 0; 2; 0; 4; 0 ] in
  let lru = Cache.create (cfg ~sets:2 ~ways:2 ()) in
  let fifo = Cache.create (cfg ~policy:Cache.Fifo ~sets:2 ~ways:2 ()) in
  let lru_res = run_trace lru seq and fifo_res = run_trace fifo seq in
  Alcotest.(check (list bool)) "lru keeps 0" [ false; false; true; false; true ] lru_res;
  Alcotest.(check (list bool)) "fifo evicts 0" [ false; false; true; false; false ] fifo_res

let test_lru_inclusion_property =
  (* For the same set count, an LRU cache with more ways hits on a superset
     of accesses (stack inclusion). *)
  QCheck.Test.make ~name:"LRU way-inclusion" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(10 -- 200) (int_range 0 64)))
    (fun (_, blocks) ->
      let small = Cache.create (cfg ~sets:4 ~ways:2 ()) in
      let big = Cache.create (cfg ~sets:4 ~ways:4 ()) in
      List.for_all
        (fun b ->
          let hs = Cache.access small (addr_of_block b) in
          let hb = Cache.access big (addr_of_block b) in
          (not hs) || hb)
        blocks)

let test_stats_consistency =
  QCheck.Test.make ~name:"stats add up" ~count:60
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 0 1000))
    (fun blocks ->
      let c = Cache.create (cfg ~sets:8 ~ways:2 ()) in
      let hits = List.filter (fun b -> Cache.access c (addr_of_block b)) blocks in
      let s = Cache.stats c in
      s.Cache.accesses = List.length blocks
      && s.Cache.hits = List.length hits
      && s.Cache.misses = s.Cache.accesses - s.Cache.hits)

let test_probe_no_side_effect () =
  let c = Cache.create (cfg ~sets:2 ~ways:1 ()) in
  ignore (Cache.access c (addr_of_block 0));
  Alcotest.(check bool) "probe present" true (Cache.probe c (addr_of_block 0));
  Alcotest.(check bool) "probe absent" false (Cache.probe c (addr_of_block 2));
  let s = Cache.stats c in
  Alcotest.(check int) "probe did not count" 1 s.Cache.accesses

let test_insert_prefetch () =
  let c = Cache.create (cfg ~sets:2 ~ways:1 ()) in
  Cache.insert c (addr_of_block 6);
  Alcotest.(check bool) "inserted block present" true (Cache.probe c (addr_of_block 6));
  let s = Cache.stats c in
  Alcotest.(check int) "insert not a demand access" 0 s.Cache.accesses;
  Alcotest.(check bool) "subsequent demand hits" true (Cache.access c (addr_of_block 6))

let test_reset () =
  let c = Cache.create (cfg ~sets:2 ~ways:1 ()) in
  ignore (Cache.access c 0);
  Cache.reset c;
  let s = Cache.stats c in
  Alcotest.(check int) "stats cleared" 0 s.Cache.accesses;
  Alcotest.(check bool) "contents cleared" false (Cache.probe c 0)

let test_config_validation () =
  Alcotest.check_raises "sets power of two"
    (Invalid_argument "Cache.config: sets must be a power of two") (fun () ->
      ignore (Cache.config ~sets:3 ~ways:2 ()));
  Alcotest.check_raises "positive ways"
    (Invalid_argument "Cache.config: ways must be positive") (fun () ->
      ignore (Cache.config ~sets:4 ~ways:0 ()))

let test_naming_and_size () =
  let c = cfg ~sets:64 ~ways:12 () in
  Alcotest.(check string) "paper naming" "64set-12way" (Cache.config_name c);
  Alcotest.(check int) "48 KiB" (48 * 1024) (Cache.size_bytes c)

let test_policies_smoke () =
  (* Every policy must service an arbitrary trace without error and respect
     capacity: a working set that fits never misses after warm-up. *)
  List.iter
    (fun policy ->
      let c = Cache.create (cfg ~policy ~sets:4 ~ways:2 ()) in
      for round = 1 to 3 do
        for b = 0 to 7 do
          let hit = Cache.access c (addr_of_block b) in
          if round > 1 then
            Alcotest.(check bool) "warm working set hits" true hit
        done
      done)
    [ Cache.Lru; Cache.Fifo; Cache.Plru; Cache.Srrip; Cache.Random_policy 3 ]

let test_hit_rate () =
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Cache.hit_rate { Cache.accesses = 0; hits = 0; misses = 0 });
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Cache.hit_rate { Cache.accesses = 4; hits = 2; misses = 2 })

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "cache",
    [
      Alcotest.test_case "cold misses" `Quick test_cold_misses;
      Alcotest.test_case "hit on reuse" `Quick test_hit_on_reuse;
      Alcotest.test_case "block granularity" `Quick test_same_block_offsets_hit;
      Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
      Alcotest.test_case "fifo vs lru" `Quick test_fifo_vs_lru;
      Alcotest.test_case "probe has no side effect" `Quick test_probe_no_side_effect;
      Alcotest.test_case "insert (prefetch fill)" `Quick test_insert_prefetch;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "naming and size" `Quick test_naming_and_size;
      Alcotest.test_case "all policies smoke" `Quick test_policies_smoke;
      Alcotest.test_case "hit rate" `Quick test_hit_rate;
      qc test_lru_inclusion_property;
      qc test_stats_consistency;
    ] )
