(* Quickstart: the full CacheBox pipeline on one benchmark, end to end.

   1. Generate a memory trace (a Polybench-style gemm kernel).
   2. Simulate an L1 cache to get ground-truth hits/misses (ChampSim role).
   3. Convert trace + misses into paired heatmaps.
   4. Train a small CB-GAN on a handful of other benchmarks.
   5. Predict the gemm miss heatmaps and compare hit rates.

   Run with:  dune exec examples/quickstart.exe
   (set CACHEBOX_EPOCHS to trade time for accuracy; default here is small) *)

let () =
  let spec = Heatmap.spec () in
  let cache = Cache.config ~sets:64 ~ways:12 () in
  let trace_len = 12_000 in
  let epochs =
    match Sys.getenv_opt "CACHEBOX_EPOCHS" with Some v -> int_of_string v | None -> 8
  in

  print_endline "=== CacheBox quickstart ===";
  Printf.printf "cache: %s (%d bytes), heatmaps: %dx%d window %d\n\n"
    (Cache.config_name cache) (Cache.size_bytes cache) spec.Heatmap.height
    spec.Heatmap.width spec.Heatmap.window;

  (* The benchmark we want to predict: completely unseen during training. *)
  let target_benchmark = Suite.find "gemm.small" in

  (* A small training set from other benchmark groups. *)
  let training_benchmarks =
    [ "2mm.small"; "atax.small"; "mvt.small"; "jacobi-2d.small";
      "600.perlbench_s-734B"; "631.deepsjeng_s-734B"; "bfs.uni-small"; "pagerank.uni-small" ]
    |> List.map Suite.find
  in

  print_endline "building ground-truth dataset (trace -> simulate -> heatmaps)...";
  let train_data =
    Cbox_dataset.build_l1 spec ~configs:[ cache ] ~trace_len training_benchmarks
  in
  let test_data = Cbox_dataset.build_l1 spec ~configs:[ cache ] ~trace_len [ target_benchmark ] in

  (* Show what the model sees. *)
  (match test_data with
  | { Cbox_dataset.pairs = (access, miss) :: _; _ } :: _ ->
    print_endline "\nReal access heatmap (gemm.small):";
    print_string (Heatmap.render_ascii ~max_rows:16 ~max_cols:48 access);
    print_endline "Real miss heatmap (after the L1 filter):";
    print_string (Heatmap.render_ascii ~max_rows:16 ~max_cols:48 miss)
  | _ -> ());

  Printf.printf "\ntraining CB-GAN on %d benchmarks x %d heatmaps (%d epochs)...\n%!"
    (List.length training_benchmarks)
    (List.fold_left (fun acc (d : Cbox_dataset.benchmark_data) -> acc + List.length d.pairs) 0 train_data)
    epochs;
  let model = Cbgan.create ~seed:7 (Cbgan.default_config ()) in
  let options = Cbox_train.default_options ~epochs ~batch_size:4 () in
  let options = { options with Cbox_train.lr = 1e-3 } in
  let _history =
    Cbox_train.train ~log:print_endline model spec options (Cbox_dataset.to_samples train_data)
  in

  print_endline "\nrunning inference on the unseen benchmark...";
  List.iter
    (fun d ->
      let p = Cbox_infer.predict model spec d in
      (match p.Cbox_infer.synthetic with
      | synth :: _ ->
        print_endline "Synthetic miss heatmap (CB-GAN output):";
        print_string (Heatmap.render_ascii ~max_rows:16 ~max_cols:48 synth)
      | [] -> ());
      Printf.printf "\n%-12s  true hit rate %.4f  predicted %.4f  |diff| %.2f%%\n"
        p.Cbox_infer.benchmark p.Cbox_infer.true_hit_rate p.Cbox_infer.predicted_hit_rate
        (Cbox_infer.abs_pct_diff p))
    test_data;

  (* Persist the model like the artifact's TrainedModels/. *)
  let ckpt = Filename.concat (Filename.get_temp_dir_name ()) "cachebox_quickstart.ckpt" in
  Cbgan.save model ckpt;
  Printf.printf "\nmodel checkpoint written to %s (%d parameters)\n" ckpt
    (Cbgan.parameter_count model)
