(* Modelling a hardware prefetcher with CacheBox (the paper's RQ7).

   Instead of miss heatmaps, the pairs here are (demand access heatmap,
   prefetched-address heatmap): CB-GAN learns to predict which lines a
   next-line prefetcher would fetch under a given access pattern, and the
   prediction quality is scored with MSE and SSIM as in Fig 13.

   Run with:  dune exec examples/prefetcher_model.exe *)

let () =
  let spec = Heatmap.spec () in
  let cache = Cache.config ~sets:64 ~ways:12 () in
  let trace_len = 12_000 in
  let epochs =
    match Sys.getenv_opt "CACHEBOX_EPOCHS" with Some v -> int_of_string v | None -> 8
  in

  let training_benchmarks =
    [ "619.lbm_s-734B"; "628.pop2_s-734B"; "649.fotonik3d_s-734B"; "654.roms_s-734B";
      "603.bwaves_s-734B"; "621.wrf_s-734B" ]
    |> List.map Suite.find
  in
  let test_benchmarks = [ Suite.find "470.lbm-734B"; Suite.find "627.cam4_s-734B" ] in

  let build ws =
    Cbox_dataset.build_prefetch spec ~config:cache ~kind:Prefetch.Next_line ~trace_len ws
  in
  Printf.printf "training CB-GAN on next-line prefetcher behaviour (%d epochs)...\n%!" epochs;
  let train_data = build training_benchmarks in
  let model = Cbgan.create ~seed:13 (Cbgan.default_config ()) in
  let options = { (Cbox_train.default_options ~epochs ~batch_size:4 ()) with Cbox_train.lr = 1e-3 } in
  ignore (Cbox_train.train ~log:print_endline model spec options (Cbox_dataset.to_samples train_data));

  print_endline "\nevaluating on unseen benchmarks (MSE lower is better, SSIM higher):\n";
  let window = float_of_int spec.Heatmap.window in
  List.iter
    (fun (d : Cbox_dataset.benchmark_data) ->
      let access = List.map fst d.pairs and real = List.map snd d.pairs in
      let synthetic = Cbox_infer.synthesize model spec ~cache:d.cache access in
      let scores =
        List.map2
          (fun r s ->
            ( Metrics.mse (Tensor.scale r (1.0 /. window)) (Tensor.scale s (1.0 /. window)),
              Metrics.ssim r s ))
          real synthetic
      in
      let mse = Metrics.mean (List.map fst scores) in
      let ssim = Metrics.mean (List.map snd scores) in
      Printf.printf "%-20s  MSE %.5f  SSIM %.4f\n" d.workload.Workload.name mse ssim;
      match (real, synthetic) with
      | r :: _, s :: _ ->
        print_endline "  real prefetch heatmap:";
        print_string (Heatmap.render_ascii ~max_rows:12 ~max_cols:48 r);
        print_endline "  synthetic prefetch heatmap:";
        print_string (Heatmap.render_ascii ~max_rows:12 ~max_cols:48 s)
      | _ -> ())
    (build test_benchmarks)
