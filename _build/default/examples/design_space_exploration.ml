(* Design-space exploration (the paper's RQ3 use case).

   Train ONE CB-GAN on a few L1 configurations, then sweep a grid of
   set/way configurations — including ones never seen in training — and
   compare the model's predicted hit rates against exact simulation.
   This is the "early-stage design space exploration" workflow the paper
   motivates: one model, many candidate caches, no retraining.

   Run with:  dune exec examples/design_space_exploration.exe *)

let () =
  let spec = Heatmap.spec () in
  let trace_len = 12_000 in
  let epochs =
    match Sys.getenv_opt "CACHEBOX_EPOCHS" with Some v -> int_of_string v | None -> 8
  in

  let train_configs =
    [
      Cache.config ~sets:64 ~ways:12 ();
      Cache.config ~sets:128 ~ways:12 ();
      Cache.config ~sets:128 ~ways:6 ();
      Cache.config ~sets:128 ~ways:3 ();
    ]
  in
  (* The sweep includes the paper's three unseen configs and more. *)
  let sweep =
    [
      Cache.config ~sets:32 ~ways:12 ();
      Cache.config ~sets:64 ~ways:12 ();
      Cache.config ~sets:128 ~ways:6 ();
      Cache.config ~sets:256 ~ways:6 ();
      Cache.config ~sets:256 ~ways:12 ();
      Cache.config ~sets:512 ~ways:4 ();
    ]
  in

  let training_benchmarks =
    [ "603.bwaves_s-734B"; "605.mcf_s-734B"; "621.wrf_s-734B"; "625.x264_s-734B";
      "627.cam4_s-734B"; "644.nab_s-734B"; "657.xz_s-734B"; "648.exchange2_s-734B" ]
    |> List.map Suite.find
  in
  let probe_benchmark = Suite.find "638.imagick_s-734B" in

  Printf.printf "training one CB-GAN on %d configs x %d benchmarks (%d epochs)...\n%!"
    (List.length train_configs) (List.length training_benchmarks) epochs;
  let train_data =
    Cbox_dataset.build_l1 spec ~configs:train_configs ~trace_len training_benchmarks
  in
  let model = Cbgan.create ~seed:11 (Cbgan.default_config ()) in
  let options = { (Cbox_train.default_options ~epochs ~batch_size:4 ()) with Cbox_train.lr = 1e-3 } in
  ignore (Cbox_train.train ~log:print_endline model spec options (Cbox_dataset.to_samples train_data));

  Printf.printf "\nsweeping %d candidate L1 configurations for %s:\n\n"
    (List.length sweep) probe_benchmark.Workload.name;
  Printf.printf "  %-14s %-6s %10s %10s %8s  %s\n" "config" "KiB" "simulated" "predicted" "|diff|%" "";
  List.iter
    (fun cfg ->
      let data = Cbox_dataset.build_l1 spec ~configs:[ cfg ] ~trace_len [ probe_benchmark ] in
      match data with
      | [ d ] ->
        let p = Cbox_infer.predict model spec d in
        let seen = List.exists (fun c -> c = cfg) train_configs in
        Printf.printf "  %-14s %-6d %10.4f %10.4f %8.2f  %s\n"
          (Cache.config_name cfg)
          (Cache.size_bytes cfg / 1024)
          p.Cbox_infer.true_hit_rate p.Cbox_infer.predicted_hit_rate
          (Cbox_infer.abs_pct_diff p)
          (if seen then "(seen in training)" else "(unseen)")
      | _ -> ())
    sweep;
  print_endline "\nThe model ranks candidate configurations without per-config retraining.";
  (* A tiny decision: pick the smallest config within 2 hit-rate points of
     the best predicted one — the kind of call a DSE loop automates. *)
  let predictions =
    List.filter_map
      (fun cfg ->
        match Cbox_dataset.build_l1 spec ~configs:[ cfg ] ~trace_len [ probe_benchmark ] with
        | [ d ] ->
          let p = Cbox_infer.predict model spec d in
          Some (cfg, p.Cbox_infer.predicted_hit_rate)
        | _ -> None)
      sweep
  in
  let best = List.fold_left (fun acc (_, hr) -> Float.max acc hr) 0.0 predictions in
  let pick =
    predictions
    |> List.filter (fun (_, hr) -> best -. hr < 0.02)
    |> List.sort (fun (a, _) (b, _) -> compare (Cache.size_bytes a) (Cache.size_bytes b))
  in
  match pick with
  | (cfg, hr) :: _ ->
    Printf.printf "DSE pick: %s (predicted hit rate %.4f, %d KiB)\n"
      (Cache.config_name cfg) hr (Cache.size_bytes cfg / 1024)
  | [] -> ()
