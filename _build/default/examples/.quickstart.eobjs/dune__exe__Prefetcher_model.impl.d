examples/prefetcher_model.ml: Cache Cbgan Cbox_dataset Cbox_infer Cbox_train Heatmap List Metrics Prefetch Printf Suite Sys Tensor Workload
