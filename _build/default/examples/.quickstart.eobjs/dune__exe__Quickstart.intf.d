examples/quickstart.mli:
