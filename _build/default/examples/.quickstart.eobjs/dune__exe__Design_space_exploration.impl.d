examples/design_space_exploration.ml: Cache Cbgan Cbox_dataset Cbox_infer Cbox_train Float Heatmap List Printf Suite Sys Workload
