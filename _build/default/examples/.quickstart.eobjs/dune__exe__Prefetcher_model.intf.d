examples/prefetcher_model.mli:
