examples/heatmap_gallery.ml: Array Cache Filename Heatmap List Printf String Suite Sys Tensor Workload
