examples/quickstart.ml: Cache Cbgan Cbox_dataset Cbox_infer Cbox_train Filename Heatmap List Printf Suite Sys
