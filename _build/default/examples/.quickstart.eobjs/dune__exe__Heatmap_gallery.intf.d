examples/heatmap_gallery.mli:
