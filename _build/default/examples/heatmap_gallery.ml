(* Heatmap gallery (the paper's Fig 3 / Fig 4).

   Renders access and miss heatmaps for benchmarks from all three suites —
   to the terminal as ASCII and to PGM image files — and demonstrates the
   30% overlap between consecutive heatmaps.

   Run with:  dune exec examples/heatmap_gallery.exe [output-dir] *)

let () =
  let out_dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else Filename.get_temp_dir_name () in
  let spec = Heatmap.spec () in
  let cache = Cache.config ~sets:64 ~ways:12 () in
  let trace_len = 12_000 in

  let showcase = [ "seidel-2d.small"; "605.mcf_s-734B"; "pagerank.rmat-small" ] in

  List.iter
    (fun name ->
      let w = Suite.find name in
      let trace = w.Workload.generate trace_len in
      let c = Cache.create cache in
      let hits = Array.map (fun a -> Cache.access c a) trace in
      let pairs = Heatmap.pair_of_trace spec ~addresses:trace ~hits in
      let access = List.map fst pairs and miss = List.map snd pairs in
      let hit_rate = Heatmap.hit_rate spec ~access ~miss in
      Printf.printf "=== %s (%s, L1 %s, hit rate %.4f, %d heatmaps) ===\n" name
        (Workload.suite_name w.Workload.suite)
        (Cache.config_name cache) hit_rate (List.length pairs);
      (match pairs with
      | (a, m) :: _ ->
        print_endline "access heatmap:";
        print_string (Heatmap.render_ascii ~max_rows:16 ~max_cols:64 a);
        print_endline "miss heatmap (the cache's filter output):";
        print_string (Heatmap.render_ascii ~max_rows:16 ~max_cols:64 m);
        let base = Filename.concat out_dir (String.map (fun c -> if c = '.' then '_' else c) name) in
        Heatmap.write_pgm (base ^ "_access.pgm") a;
        Heatmap.write_pgm (base ^ "_miss.pgm") m;
        Printf.printf "written: %s_access.pgm, %s_miss.pgm\n\n" base base
      | [] -> ()))
    showcase;

  (* Fig 4: the overlap between consecutive heatmaps acts as warm-up
     context. Verify and visualise it on the first benchmark. *)
  let w = Suite.find (List.hd showcase) in
  let trace = w.Workload.generate trace_len in
  let imgs = Heatmap.of_trace spec trace in
  match imgs with
  | a :: b :: _ ->
    let ov = Heatmap.overlap_columns spec in
    Printf.printf "consecutive heatmaps share %d columns (%.0f%% overlap):\n" ov
      (spec.Heatmap.overlap *. 100.0);
    let identical = ref true in
    for row = 0 to spec.Heatmap.height - 1 do
      for col = 0 to ov - 1 do
        if Tensor.get2 a row (spec.Heatmap.width - ov + col) <> Tensor.get2 b row col then
          identical := false
      done
    done;
    Printf.printf "overlapped region identical across images: %b\n" !identical
  | _ -> ()
