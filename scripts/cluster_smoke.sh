#!/usr/bin/env bash
# End-to-end smoke of the fault-tolerant shard router (run from the repo
# root, after `dune build`): train a tiny checkpoint, start three backend
# serve daemons and a router in front of them, then
#   - run loadgen through the router (zero client-visible errors, FIFO
#     exactly-once replies);
#   - kill -9 one backend mid-load and check clients still see zero
#     non-degraded errors, the router ejects the dead shard (journal +
#     stats), and re-admits it after a restart;
#   - SIGHUP-reload another backend under load (hot swap, no errors);
#   - broadcast a reload of a corrupt checkpoint through the router and
#     check it is rejected without taking anything down;
#   - gate on the router's stats counters (retries, ejections,
#     readmissions, memo hits).
set -euo pipefail

CB=${CB:-./_build/default/bin/cachebox.exe}
BENCH=600.perlbench_s-734B
WORK=$(mktemp -d)
CKPT="$WORK/cluster.ckpt"
RSOCK="$WORK/router.sock"
PIDS=()

cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "cluster_smoke: FAIL: $*" >&2
  exit 1
}

wait_sock() { # wait_sock PATH
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  fail "socket $1 never appeared"
}

# stat_num JSON FIELD -> integer value of a top-level numeric field
stat_num() {
  echo "$1" | sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p"
}

start_backend() { # start_backend N -> pid in $BACKEND_PID
  "$CB" serve --socket "$WORK/b$1.sock" --checkpoint "$CKPT" \
    --journal "$WORK/b$1.jsonl" >"$WORK/b$1.log" 2>&1 &
  BACKEND_PID=$!
  wait_sock "$WORK/b$1.sock"
}

echo "== train a tiny checkpoint"
"$CB" train --benchmarks 1 --epochs 1 --trace-len 4000 --checkpoint "$CKPT" \
  --snapshot-dir "$WORK/snaps"

echo "== start 3 backends + router"
start_backend 1; B1=$BACKEND_PID; PIDS+=("$B1")
start_backend 2; B2=$BACKEND_PID; PIDS+=("$B2")
start_backend 3; B3=$BACKEND_PID; PIDS+=("$B3")
"$CB" route --socket "$RSOCK" \
  --backend "b1=unix:$WORK/b1.sock" \
  --backend "b2=unix:$WORK/b2.sock" \
  --backend "b3=unix:$WORK/b3.sock" \
  --probe-interval-ms 300 --eject-after 2 --memo-capacity 4 \
  --deadline-ms 20000 --attempt-timeout-ms 10000 \
  --journal "$WORK/router.jsonl" \
  >"$WORK/router.log" 2>&1 &
ROUTER=$!
PIDS+=("$ROUTER")
wait_sock "$RSOCK"
"$CB" call --socket "$RSOCK" '{"op": "health"}' | grep -q '"status": "ok"' \
  || fail "cluster not healthy at start"

echo "== loadgen through the healthy router (exactly-once FIFO, zero errors)"
"$CB" loadgen --socket "$RSOCK" -n 6 -r 24 --invalid-every 7 --trace-len 4000 \
  || fail "loadgen through the healthy router"

echo "== kill one backend mid-load; clients must see zero non-degraded errors"
( sleep 0.3; kill -9 "$B2" ) &
KILLER=$!
"$CB" loadgen --socket "$RSOCK" -n 6 -r 24 --invalid-every 0 --trace-len 4000 \
  || fail "loadgen across a backend kill"
wait "$KILLER"

echo "== dead shard ejected within a probe interval"
EJECTED=0
for _ in $(seq 1 30); do
  STATS=$("$CB" call --socket "$RSOCK" '{"op": "stats"}')
  if [ "$(stat_num "$STATS" backends_up)" = 2 ]; then EJECTED=1; break; fi
  sleep 0.1
done
[ "$EJECTED" = 1 ] || fail "router never ejected the killed backend: $STATS"
grep -q '"event": "eject", "backend": "b2"' "$WORK/router.jsonl" \
  || fail "no eject event journaled"

echo "== restart the killed backend; router must re-admit it"
start_backend 2; B2=$BACKEND_PID; PIDS+=("$B2")
READMITTED=0
for _ in $(seq 1 30); do
  STATS=$("$CB" call --socket "$RSOCK" '{"op": "stats"}')
  if [ "$(stat_num "$STATS" backends_up)" = 3 ]; then READMITTED=1; break; fi
  sleep 0.1
done
[ "$READMITTED" = 1 ] || fail "router never re-admitted the restarted backend: $STATS"
grep -q '"event": "readmit", "backend": "b2"' "$WORK/router.jsonl" \
  || fail "no readmit event journaled"

echo "== SIGHUP-reload a backend under load (zero-downtime hot swap)"
( sleep 0.2; kill -HUP "$B1" ) &
HUPPER=$!
"$CB" loadgen --socket "$RSOCK" -n 4 -r 16 --invalid-every 0 --trace-len 4000 \
  || fail "loadgen across a SIGHUP reload"
wait "$HUPPER"
RELOADED=0
for _ in $(seq 1 50); do
  if "$CB" call --socket "$WORK/b1.sock" '{"op": "stats"}' | grep -q '"reloads": 1'; then
    RELOADED=1; break
  fi
  sleep 0.1
done
[ "$RELOADED" = 1 ] || fail "SIGHUP reload never landed on b1"

echo "== corrupt-checkpoint reload broadcast is rejected, nothing crashes"
head -c 1000 "$CKPT" > "$WORK/bad.ckpt"
OUT=$("$CB" call --socket "$RSOCK" \
  "{\"op\": \"reload\", \"checkpoint\": \"$WORK/bad.ckpt\"}" || true)
echo "$OUT" | grep -q '"ok": false' || fail "corrupt reload accepted: $OUT"
echo "$OUT" | grep -q 'model_unavailable' || fail "corrupt reload not typed: $OUT"
"$CB" call --socket "$RSOCK" '{"op": "health"}' | grep -q '"status": "ok"' \
  || fail "cluster unhealthy after a rejected reload"

echo "== memo: identical requests short-circuit at the router"
REQ="{\"op\": \"infer\", \"sets\": 64, \"ways\": 8, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}"
"$CB" call --socket "$RSOCK" "$REQ" | grep -q '"ok": true' || fail "memo warm request"
"$CB" call --socket "$RSOCK" "$REQ" | grep -q '"memo": true' || fail "second identical request not memoized"

echo "== gate on the router's counters"
STATS=$("$CB" call --socket "$RSOCK" '{"op": "stats"}')
[ "$(stat_num "$STATS" retries)" -ge 1 ] || fail "no retries counted across the kill: $STATS"
[ "$(stat_num "$STATS" memo_hits)" -ge 1 ] || fail "no memo hits counted: $STATS"
echo "$STATS" | grep -q '"ejections": 1' || fail "no ejection in backend stats: $STATS"
echo "$STATS" | grep -q '"readmissions": 1' || fail "no readmission in backend stats: $STATS"

echo "== clean shutdown"
"$CB" call --socket "$RSOCK" '{"op": "shutdown"}' >/dev/null
wait "$ROUTER" || fail "router exited non-zero"
[ ! -S "$RSOCK" ] || fail "router socket survived shutdown"
for s in b1 b2 b3; do
  "$CB" call --socket "$WORK/$s.sock" '{"op": "shutdown"}' >/dev/null || true
done

echo "cluster_smoke: OK"
