#!/usr/bin/env bash
# End-to-end smoke of the live streaming path (run from the repo root,
# after `dune build`): train a tiny checkpoint, serve it, stream a real
# benchmark trace over a backpressured session and record every window
# prediction, then re-run the same trace with a client that dies
# mid-stream (daemon must stay healthy), resume its session and check
# the kill+resume window set is bit-identical to the uninterrupted run
# (hex-printed hit rates, so "identical" means identical bits). A chunk
# with a non-integer address must poison only its own session with the
# typed corrupt_input error (exit 3) while a neighbouring stream still
# matches the reference, and the daemon's stream counters must
# reconcile exactly. Finishes with concurrent streaming loadgen clients
# and a clean drain.
set -euo pipefail

CB=${CB:-./_build/default/bin/cachebox.exe}
BENCH=600.perlbench_s-734B
WORK=$(mktemp -d)
SOCK="$WORK/cachebox.sock"
CKPT="$WORK/stream.ckpt"
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "stream_smoke: FAIL: $*" >&2
  exit 1
}

wait_ready() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon socket $SOCK never appeared"
}

echo "== train a tiny checkpoint and serve it"
"$CB" train --benchmarks 1 --epochs 1 --trace-len 4000 --checkpoint "$CKPT"
# The idle reaper is armed through the environment on purpose: a broken
# CACHEBOX_IDLE_TIMEOUT_MS parse would kill the daemon at startup, and a
# reaper that fails to exempt streams would sever the sessions below.
CACHEBOX_IDLE_TIMEOUT_MS=60000 "$CB" serve --socket "$SOCK" --checkpoint "$CKPT" &
SERVE_PID=$!
wait_ready

STREAM=("$CB" stream --socket "$SOCK" --benchmark "$BENCH" --trace-len 16000 \
  --sets 64 --ways 4 --chunk 1024)

echo "== reference: uninterrupted stream"
"${STREAM[@]}" >"$WORK/ref.out"
grep '^window=' "$WORK/ref.out" | sort >"$WORK/ref.windows"
REF_N=$(wc -l <"$WORK/ref.windows")
[ "$REF_N" -ge 3 ] || fail "reference stream closed only $REF_N windows"
grep -q '^closed ' "$WORK/ref.out" || fail "reference stream did not close cleanly"

echo "== client dies mid-stream with a feed in flight; daemon must stay healthy"
"${STREAM[@]}" --kill-after-windows 2 >"$WORK/kill.out"
grep -q '^killed ' "$WORK/kill.out" || fail "kill run did not die mid-stream"
TOK=$(sed -n 's/^session=//p' "$WORK/kill.out")
[ -n "$TOK" ] || fail "kill run printed no session token"
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"ok": true' \
  || fail "daemon unhealthy after a client died mid-stream"

echo "== resume the dead client's session; kill+resume windows == reference, bit for bit"
"${STREAM[@]}" --resume "$TOK" >"$WORK/resume.out"
grep -q '^resumed consumed=' "$WORK/resume.out" || fail "resume reported no replay point"
grep -q '^closed ' "$WORK/resume.out" || fail "resumed stream did not close cleanly"
# The dying run acked the windows it saw, so the resume replays nothing
# it printed; sort -u still collapses any replayed duplicates (a window
# delivered twice with different bits would survive as two lines and
# break the diff).
cat "$WORK/kill.out" "$WORK/resume.out" | grep '^window=' | sort -u >"$WORK/merged.windows"
diff -u "$WORK/ref.windows" "$WORK/merged.windows" >&2 \
  || fail "kill+resume windows differ from the uninterrupted stream"

echo "== corrupt chunk -> typed corrupt_input (exit 3), only that session poisoned"
rc=0
"${STREAM[@]}" --corrupt-at 1 >"$WORK/corrupt.out" 2>"$WORK/corrupt.err" || rc=$?
[ "$rc" -eq 3 ] || fail "corrupt chunk exited $rc, want 3 (corrupt_input)"
grep -q 'corrupt_input' "$WORK/corrupt.err" || fail "poison was not the typed corrupt_input"

echo "== neighbour unaffected: a clean stream after the poison still matches the reference"
"${STREAM[@]}" >"$WORK/after.out"
grep '^window=' "$WORK/after.out" | sort >"$WORK/after.windows"
diff -u "$WORK/ref.windows" "$WORK/after.windows" >&2 \
  || fail "clean stream diverged after a neighbouring session was poisoned"

echo "== stream counters reconcile exactly"
STATS=$("$CB" call --socket "$SOCK" '{"op": "stats"}')
echo "$STATS" | grep -q '"stream":' || fail "stats reply has no stream object"
# 4 opens (ref, kill, corrupt, after; resume re-attaches), 3 clean
# closes (the corrupt session is poisoned, not closed), one resume, one
# poison, and every session's windows counted exactly once: the killed
# session's in-flight windows land server-side and are not re-counted on
# replay, and the poisoned run never reaches a window boundary.
for want in "\"opened\": 4," "\"closed\": 3," "\"resumed\": 1," \
  "\"poisoned\": 1," "\"windows\": $((3 * REF_N)),"; do
  echo "$STATS" | grep -qF "$want" || fail "stats missing $want in: $STATS"
done

echo "== concurrent streaming clients (deaths, resumes, credit probes), then a clean drain"
"$CB" loadgen --socket "$SOCK" --stream -n 6 --stream-windows 4 --shutdown-after
wait "$SERVE_PID"
SERVE_PID=
[ ! -S "$SOCK" ] || fail "socket file survived shutdown"

echo "stream_smoke: OK"
