#!/usr/bin/env bash
# Concurrency stress of the batched serving reactor (run from the repo
# root, after `dune build`): train a tiny checkpoint, serve it with
# micro-batching and two model replicas, arm a Slow model fault through
# CACHEBOX_FAULT, then slam the daemon with `cachebox loadgen` — N
# concurrent pipelined clients mixing valid inferences, malformed lines
# and deliberately slow senders. loadgen itself asserts zero dropped,
# duplicated or reordered replies and reconciles the shed count against
# the daemon's stats; this script additionally checks the clean-shutdown
# drain (daemon exits, socket file removed) and that a post-shutdown
# connect is refused.
set -euo pipefail

CB=${CB:-./_build/default/bin/cachebox.exe}
WORK=$(mktemp -d)
SOCK="$WORK/cachebox.sock"
CKPT="$WORK/load.ckpt"
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_load: FAIL: $*" >&2
  exit 1
}

wait_ready() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon socket $SOCK never appeared"
}

echo "== train a tiny checkpoint"
"$CB" train --benchmarks 1 --epochs 1 --trace-len 4000 --checkpoint "$CKPT"

echo "== serve with micro-batching, 2 replicas and an armed Slow fault"
# slow:0.05@4x3 stalls the forward pass 50 ms on three occasions starting
# at the 4th model call — batches behind a stalled replica must still all
# be answered, in order.
CACHEBOX_FAULT="slow:0.05@4x3" "$CB" serve --socket "$SOCK" --checkpoint "$CKPT" \
  --batch-max 16 --batch-linger-ms 2 --replicas 2 --queue-depth 64 &
SERVE_PID=$!
wait_ready

echo "== stress: 12 pipelined clients, mixed valid/malformed, then drain"
"$CB" loadgen --socket "$SOCK" -n 12 -r 24 --invalid-every 6 --shutdown-after \
  || fail "loadgen reported dropped/duplicated/misaccounted replies"

echo "== clean shutdown: daemon exits and removes its socket"
wait "$SERVE_PID" || fail "daemon exited non-zero after drain"
SERVE_PID=
[ ! -S "$SOCK" ] || fail "socket file survived shutdown"
if "$CB" call --socket "$SOCK" '{"op": "health"}' >/dev/null 2>&1; then
  fail "daemon still answering after shutdown"
fi

echo "serve_load: OK"
