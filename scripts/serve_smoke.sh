#!/usr/bin/env bash
# End-to-end smoke of the hardened serving path (run from the repo root,
# after `dune build`): train a tiny checkpoint, serve it over a Unix
# socket, exercise the protocol (health, a valid inference, malformed and
# invalid requests, stats, clean shutdown), then restart against a
# corrupted checkpoint and check the daemon starts degraded and answers
# from the HRD analytical baseline instead of crashing. Also checks the
# stable taxonomy exit codes the CLI maps errors to.
set -euo pipefail

CB=${CB:-./_build/default/bin/cachebox.exe}
BENCH=600.perlbench_s-734B
WORK=$(mktemp -d)
SOCK="$WORK/cachebox.sock"
CKPT="$WORK/smoke.ckpt"
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  exit 1
}

expect_exit() { # expect_exit WANT CMD...
  local want=$1 rc=0
  shift
  "$@" >/dev/null 2>&1 || rc=$?
  [ "$rc" -eq "$want" ] || fail "expected exit $want, got $rc: $*"
}

wait_ready() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon socket $SOCK never appeared"
}

echo "== train a tiny checkpoint"
"$CB" train --benchmarks 1 --epochs 1 --trace-len 4000 --checkpoint "$CKPT"

echo "== invalid geometry -> invalid_config, exit 2"
expect_exit 2 "$CB" infer "$BENCH" --sets 100 --ways 4 --trace-len 4000 --checkpoint "$CKPT"

echo "== missing checkpoint -> model_unavailable (exit 4); --fallback hrd answers instead"
expect_exit 4 "$CB" infer "$BENCH" --sets 64 --ways 4 --trace-len 4000 --checkpoint "$WORK/nope.ckpt"
"$CB" infer "$BENCH" --sets 64 --ways 4 --trace-len 4000 --checkpoint "$WORK/nope.ckpt" \
  --fallback hrd | grep -q "degraded: hrd" || fail "no degraded hrd prediction"

echo "== serve a healthy checkpoint"
"$CB" serve --socket "$SOCK" --checkpoint "$CKPT" &
SERVE_PID=$!
wait_ready
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"status": "ok"' || fail "health not ok"
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}")
echo "$OUT" | grep -q '"ok": true' || fail "valid inference refused: $OUT"
expect_exit 2 "$CB" call --socket "$SOCK" '{"op": "infer"'
expect_exit 2 "$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 100, \"ways\": 4, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}"
"$CB" call --socket "$SOCK" '{"op": "stats"}' | grep -q '"served":' || fail "stats missing served"
"$CB" call --socket "$SOCK" '{"op": "shutdown"}' >/dev/null
wait "$SERVE_PID"
SERVE_PID=
[ ! -S "$SOCK" ] || fail "socket file survived shutdown"

echo "== corrupted checkpoint -> daemon starts degraded, answers from the hrd baseline"
dd if=/dev/zero of="$CKPT" bs=1 seek=100 count=8 conv=notrunc status=none
"$CB" serve --socket "$SOCK" --checkpoint "$CKPT" --fallback hrd &
SERVE_PID=$!
wait_ready
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"status": "degraded"' \
  || fail "expected degraded health"
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}")
echo "$OUT" | grep -q '"degraded": true' || fail "expected a degraded answer: $OUT"
echo "$OUT" | grep -q '"source": "hrd"' || fail "expected the hrd baseline: $OUT"
"$CB" call --socket "$SOCK" '{"op": "shutdown"}' >/dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "== distill a tiny student and serve it next to the teacher"
# The teacher checkpoint was corrupted above; retrain it first.
"$CB" train --benchmarks 1 --epochs 1 --trace-len 4000 --checkpoint "$CKPT"
STUDENT="$WORK/student.ckpt"
"$CB" distill --benchmarks 1 --epochs 1 --trace-len 4000 \
  --checkpoint "$CKPT" --out "$STUDENT"
[ -f "$STUDENT" ] || fail "distill wrote no student checkpoint"

echo "== no --student: a student request degrades to float32, flagged, breaker untouched"
"$CB" serve --socket "$SOCK" --checkpoint "$CKPT" &
SERVE_PID=$!
wait_ready
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000, \"backend\": \"student\"}")
echo "$OUT" | grep -q '"degraded": true' || fail "student w/o checkpoint not degraded: $OUT"
echo "$OUT" | grep -q '"backend": "float32"' || fail "degraded student rerun should name float32: $OUT"
echo "$OUT" | grep -q '"reason": "student_unavailable"' || fail "missing student reason: $OUT"
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"breaker": "closed"' \
  || fail "student_unavailable must not trip the breaker"
"$CB" call --socket "$SOCK" '{"op": "shutdown"}' >/dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "== --student: student and student-int8 answer first-class; counters reconcile"
"$CB" serve --socket "$SOCK" --checkpoint "$CKPT" --student "$STUDENT" &
SERVE_PID=$!
wait_ready
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"student_loaded": true' \
  || fail "health does not report the loaded student"
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000, \"backend\": \"student\"}")
echo "$OUT" | grep -q '"ok": true' || fail "student inference refused: $OUT"
echo "$OUT" | grep -q '"backend": "student"' || fail "reply does not name the student: $OUT"
echo "$OUT" | grep -q '"degraded": false' || fail "student answer wrongly degraded: $OUT"
# loadgen reconciles the daemon's per-backend counter deltas against the
# backends its clients observed in replies; it exits non-zero on any skew.
"$CB" loadgen --socket "$SOCK" -n 2 -r 16 --backend student \
  || fail "loadgen --backend student did not reconcile"
"$CB" loadgen --socket "$SOCK" -n 2 -r 16 --backend-mix float32:2,int8:1,student:1 \
  || fail "loadgen --backend-mix did not reconcile"

echo "== SIGHUP hot-swaps the student atomically under load"
"$CB" distill --benchmarks 1 --epochs 2 --trace-len 4000 \
  --checkpoint "$CKPT" --out "$STUDENT.next"
mv "$STUDENT.next" "$STUDENT"
"$CB" loadgen --socket "$SOCK" -n 2 -r 32 --backend student &
LOAD_PID=$!
sleep 0.2
kill -HUP "$SERVE_PID"
wait "$LOAD_PID" || fail "loadgen failed across the student hot-swap"
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"student_loaded": true' \
  || fail "student gone after SIGHUP reload"

echo "== corrupt student on reload: previous student kept, float32 untouched"
dd if=/dev/zero of="$STUDENT" bs=1 seek=60 count=8 conv=notrunc status=none
kill -HUP "$SERVE_PID"
sleep 0.5
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"status": "ok"' \
  || fail "daemon unhealthy after corrupt student reload"
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000, \"backend\": \"student\"}")
echo "$OUT" | grep -q '"backend": "student"' \
  || fail "previous student not kept after a corrupt reload: $OUT"
"$CB" call --socket "$SOCK" '{"op": "shutdown"}' >/dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "serve_smoke: OK"
