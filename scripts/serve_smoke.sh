#!/usr/bin/env bash
# End-to-end smoke of the hardened serving path (run from the repo root,
# after `dune build`): train a tiny checkpoint, serve it over a Unix
# socket, exercise the protocol (health, a valid inference, malformed and
# invalid requests, stats, clean shutdown), then restart against a
# corrupted checkpoint and check the daemon starts degraded and answers
# from the HRD analytical baseline instead of crashing. Also checks the
# stable taxonomy exit codes the CLI maps errors to.
set -euo pipefail

CB=${CB:-./_build/default/bin/cachebox.exe}
BENCH=600.perlbench_s-734B
WORK=$(mktemp -d)
SOCK="$WORK/cachebox.sock"
CKPT="$WORK/smoke.ckpt"
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  exit 1
}

expect_exit() { # expect_exit WANT CMD...
  local want=$1 rc=0
  shift
  "$@" >/dev/null 2>&1 || rc=$?
  [ "$rc" -eq "$want" ] || fail "expected exit $want, got $rc: $*"
}

wait_ready() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon socket $SOCK never appeared"
}

echo "== train a tiny checkpoint"
"$CB" train --benchmarks 1 --epochs 1 --trace-len 4000 --checkpoint "$CKPT"

echo "== invalid geometry -> invalid_config, exit 2"
expect_exit 2 "$CB" infer "$BENCH" --sets 100 --ways 4 --trace-len 4000 --checkpoint "$CKPT"

echo "== missing checkpoint -> model_unavailable (exit 4); --fallback hrd answers instead"
expect_exit 4 "$CB" infer "$BENCH" --sets 64 --ways 4 --trace-len 4000 --checkpoint "$WORK/nope.ckpt"
"$CB" infer "$BENCH" --sets 64 --ways 4 --trace-len 4000 --checkpoint "$WORK/nope.ckpt" \
  --fallback hrd | grep -q "degraded: hrd" || fail "no degraded hrd prediction"

echo "== serve a healthy checkpoint"
"$CB" serve --socket "$SOCK" --checkpoint "$CKPT" &
SERVE_PID=$!
wait_ready
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"status": "ok"' || fail "health not ok"
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}")
echo "$OUT" | grep -q '"ok": true' || fail "valid inference refused: $OUT"
expect_exit 2 "$CB" call --socket "$SOCK" '{"op": "infer"'
expect_exit 2 "$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 100, \"ways\": 4, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}"
"$CB" call --socket "$SOCK" '{"op": "stats"}' | grep -q '"served":' || fail "stats missing served"
"$CB" call --socket "$SOCK" '{"op": "shutdown"}' >/dev/null
wait "$SERVE_PID"
SERVE_PID=
[ ! -S "$SOCK" ] || fail "socket file survived shutdown"

echo "== corrupted checkpoint -> daemon starts degraded, answers from the hrd baseline"
dd if=/dev/zero of="$CKPT" bs=1 seek=100 count=8 conv=notrunc status=none
"$CB" serve --socket "$SOCK" --checkpoint "$CKPT" --fallback hrd &
SERVE_PID=$!
wait_ready
"$CB" call --socket "$SOCK" '{"op": "health"}' | grep -q '"status": "degraded"' \
  || fail "expected degraded health"
OUT=$("$CB" call --socket "$SOCK" \
  "{\"op\": \"infer\", \"sets\": 64, \"ways\": 12, \"benchmark\": \"$BENCH\", \"trace_len\": 4000}")
echo "$OUT" | grep -q '"degraded": true' || fail "expected a degraded answer: $OUT"
echo "$OUT" | grep -q '"source": "hrd"' || fail "expected the hrd baseline: $OUT"
"$CB" call --socket "$SOCK" '{"op": "shutdown"}' >/dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "serve_smoke: OK"
