(* Dataset pipeline: streaming accumulator vs recorded-trace heatmaps, the
   content-addressed simulation cache, and streaming-vs-reference builder
   bit-identity at several domain counts (ISSUE 5).

   Everything here checks *exact* equality: the streaming path is an
   optimization, not an approximation, so any deviation from the recorded
   reference implementations is a bug. *)

let block = 64

(* --- helpers --- *)

let tensor_eq a b =
  Tensor.shape a = Tensor.shape b
  &&
  let xa = Tensor.to_array a and xb = Tensor.to_array b in
  xa = xb

let tensors_eq la lb = List.length la = List.length lb && List.for_all2 tensor_eq la lb

let pairs_eq la lb =
  List.length la = List.length lb
  && List.for_all2 (fun (a1, m1) (a2, m2) -> tensor_eq a1 a2 && tensor_eq m1 m2) la lb

let data_eq (a : Cbox_dataset.benchmark_data list) (b : Cbox_dataset.benchmark_data list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Cbox_dataset.benchmark_data) (y : Cbox_dataset.benchmark_data) ->
         x.Cbox_dataset.workload.Workload.name = y.Cbox_dataset.workload.Workload.name
         && x.Cbox_dataset.cache = y.Cbox_dataset.cache
         && x.Cbox_dataset.level = y.Cbox_dataset.level
         && Int64.bits_of_float x.Cbox_dataset.true_hit_rate
            = Int64.bits_of_float y.Cbox_dataset.true_hit_rate
         && pairs_eq x.Cbox_dataset.pairs y.Cbox_dataset.pairs)
       a b

let fresh_tmp_dir () =
  let d = Filename.temp_file "cbx-test-simcache" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let remove_tree d =
  if Sys.file_exists d then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (Sys.readdir d);
    try Sys.rmdir d with Sys_error _ -> ()
  end

let with_tmp_cache f =
  let d = fresh_tmp_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree d)
    (fun () -> Simcache.with_dir (Some d) (fun () -> f d))

(* --- Accum vs of_trace / pair_of_trace (satellite c) --- *)

(* Specs are generated via an integer overlap-column count so the
   inter-image step is always positive. *)
let gen_spec =
  QCheck.Gen.(
    let* height = oneofl [ 4; 8; 16 ] in
    let* width = int_range 2 12 in
    let* window = int_range 1 8 in
    let* oc = int_range 0 (width - 1) in
    let* granularity = oneofl [ 1; 64 ] in
    return
      (Heatmap.spec ~height ~width ~window
         ~overlap:(float_of_int oc /. float_of_int width)
         ~granularity ()))

let gen_case =
  QCheck.Gen.(
    let* spec = gen_spec in
    let per_image = Heatmap.accesses_per_image spec in
    (* From one short of a full image up to ~4 images, hitting the
       exact-length boundary often. *)
    let* len = int_range (max 0 (per_image - 1)) ((4 * per_image) + 3) in
    let* seed = int_range 0 10_000 in
    return (spec, len, seed))

let arb_case =
  QCheck.make
    ~print:(fun (s, len, seed) ->
      Printf.sprintf "h%d w%d win%d ov%.3f g%d len%d seed%d" s.Heatmap.height s.Heatmap.width
        s.Heatmap.window s.Heatmap.overlap s.Heatmap.granularity len seed)
    gen_case

let test_accum_matches_trace =
  QCheck.Test.make ~name:"Accum = of_trace/pair_of_trace (bit-identical)" ~count:200 arb_case
    (fun (spec, len, seed) ->
      let rng = Prng.create seed in
      let addresses = Array.init len (fun _ -> Prng.int rng 100_000) in
      let hits = Array.init len (fun _ -> Prng.bool rng) in
      let acc = Heatmap.Accum.create ~planes:2 spec in
      Array.iteri
        (fun i addr -> Heatmap.Accum.add acc ~addr ~mask:(if hits.(i) then 1 else 3))
        addresses;
      if len < Heatmap.accesses_per_image spec then Heatmap.Accum.completed acc = 0
      else begin
        let pairs = Heatmap.pair_of_trace spec ~addresses ~hits in
        let expect_access = List.map fst pairs and expect_miss = List.map snd pairs in
        Heatmap.Accum.completed acc = List.length pairs
        && tensors_eq (Heatmap.Accum.images acc ~plane:0) expect_access
        && tensors_eq (Heatmap.Accum.images acc ~plane:1) expect_miss
        && Heatmap.Accum.deoverlapped_mass acc ~plane:0
           = Heatmap.deoverlapped_sum spec expect_access
        && Heatmap.Accum.deoverlapped_mass acc ~plane:1
           = Heatmap.deoverlapped_sum spec expect_miss
      end)

let test_accum_empty () =
  let spec = Heatmap.spec ~height:8 ~width:4 ~window:5 ~overlap:0.25 () in
  let acc = Heatmap.Accum.create ~planes:2 spec in
  Alcotest.(check int) "no images" 0 (Heatmap.Accum.completed acc);
  Alcotest.(check (float 0.0)) "no mass" 0.0 (Heatmap.Accum.deoverlapped_mass acc ~plane:0)

(* --- Crc32.digest_sub (tentpole support) --- *)

let test_digest_sub =
  QCheck.Test.make ~name:"Crc32.digest_sub = digest of the slice" ~count:200
    QCheck.(pair small_string small_int)
    (fun (s, salt) ->
      let whole = Printf.sprintf "%d%s%d" salt s salt in
      let pos = salt mod (String.length whole + 1) in
      let len = String.length whole - pos in
      Crc32.digest_sub (Bytes.of_string whole) ~pos ~len
      = Crc32.digest (String.sub whole pos len))

(* --- Simcache container (satellite d) --- *)

let spec = Heatmap.spec ()
let l1 = Cache.config ~sets:64 ~ways:8 ()

let sample_sections () =
  let rng = Prng.create 7 in
  let plane lo =
    Tensor.of_array [| 4; 3 |] (Array.init 12 (fun i -> float_of_int (lo + (i * 7 mod 50))))
  in
  ignore (Prng.int rng 2);
  [
    { Simcache.tag = "L1"; pairs = [ (plane 0, plane 3); (plane 5, plane 1) ]; true_hit_rate = 0.875 };
    { Simcache.tag = "L2"; pairs = [ (plane 2, plane 9) ]; true_hit_rate = 0.25 };
  ]

let sections_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Simcache.section) (y : Simcache.section) ->
         x.Simcache.tag = y.Simcache.tag
         && Int64.bits_of_float x.Simcache.true_hit_rate
            = Int64.bits_of_float y.Simcache.true_hit_rate
         && pairs_eq x.Simcache.pairs y.Simcache.pairs)
       a b

let test_simcache_roundtrip () =
  with_tmp_cache (fun _dir ->
      Simcache.reset_stats ();
      let descriptor =
        Simcache.descriptor ~kind:"test" ~workload:"w" ~trace_len:100 ~configs:[ l1 ] ~spec
      in
      let sections = sample_sections () in
      Alcotest.(check bool) "miss before store" true (Simcache.lookup ~descriptor = None);
      Simcache.store ~descriptor sections;
      (match Simcache.lookup ~descriptor with
      | Some got -> Alcotest.(check bool) "roundtrip bit-identical" true (sections_eq sections got)
      | None -> Alcotest.fail "stored entry not found");
      let s = Simcache.stats () in
      Alcotest.(check int) "one store" 1 s.Simcache.stores;
      Alcotest.(check int) "one hit" 1 s.Simcache.hits;
      Alcotest.(check int) "one miss" 1 s.Simcache.misses;
      Alcotest.(check int) "no errors" 0 s.Simcache.errors)

let test_simcache_corruption () =
  with_tmp_cache (fun dir ->
      let descriptor =
        Simcache.descriptor ~kind:"test" ~workload:"w" ~trace_len:100 ~configs:[ l1 ] ~spec
      in
      let sections = sample_sections () in
      Simcache.store ~descriptor sections;
      let path = Simcache.entry_path ~dir ~descriptor in
      let size = (Unix.stat path).Unix.st_size in
      (* Flip a byte in the header, the descriptor and the pixel data: every
         corruption must read as a miss, never a crash or wrong data. *)
      List.iter
        (fun offset ->
          Simcache.store ~descriptor sections;
          Faultinject.corrupt_byte path ~offset;
          Simcache.reset_stats ();
          Alcotest.(check bool)
            (Printf.sprintf "corrupt byte @%d ignored" offset)
            true
            (Simcache.lookup ~descriptor = None);
          Alcotest.(check int)
            (Printf.sprintf "corrupt byte @%d counted" offset)
            1 (Simcache.stats ()).Simcache.errors;
          (* with_sections regenerates and heals the entry in place. *)
          let got = Simcache.with_sections ~descriptor (fun () -> sections) in
          Alcotest.(check bool) "regenerated" true (sections_eq sections got);
          match Simcache.lookup ~descriptor with
          | Some healed -> Alcotest.(check bool) "healed on disk" true (sections_eq sections healed)
          | None -> Alcotest.fail "entry not rewritten after corruption")
        [ 0; 3; 10; size / 2; size - 1 ])

let test_simcache_stale_formats () =
  with_tmp_cache (fun dir ->
      let descriptor =
        Simcache.descriptor ~kind:"test" ~workload:"w" ~trace_len:100 ~configs:[ l1 ] ~spec
      in
      let path = Simcache.entry_path ~dir ~descriptor in
      let plant text =
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc
      in
      (* Truncated, foreign-magic and empty files — e.g. leftovers from an
         older container format — all read as misses. *)
      List.iter
        (fun text ->
          plant text;
          Simcache.reset_stats ();
          Alcotest.(check bool) "stale entry ignored" true (Simcache.lookup ~descriptor = None);
          Alcotest.(check int) "stale entry counted" 1 (Simcache.stats ()).Simcache.errors)
        [ ""; "CBSC1\n"; "CBSC0\n0123456789abcdef-old-format-entry"; String.make 64 '\xff' ])

let test_simcache_descriptor_keys () =
  (* Distinct inputs must produce distinct descriptors (the cache key). *)
  let d ~kind ~workload ~trace_len ~configs ~spec =
    Simcache.descriptor ~kind ~workload ~trace_len ~configs ~spec
  in
  let base = d ~kind:"l1" ~workload:"w" ~trace_len:100 ~configs:[ l1 ] ~spec in
  let variants =
    [
      d ~kind:"hierarchy" ~workload:"w" ~trace_len:100 ~configs:[ l1 ] ~spec;
      d ~kind:"l1" ~workload:"w2" ~trace_len:100 ~configs:[ l1 ] ~spec;
      d ~kind:"l1" ~workload:"w" ~trace_len:101 ~configs:[ l1 ] ~spec;
      d ~kind:"l1" ~workload:"w" ~trace_len:100 ~configs:[ Cache.config ~sets:128 ~ways:8 () ] ~spec;
      d ~kind:"l1" ~workload:"w" ~trace_len:100 ~configs:[ l1 ]
        ~spec:(Heatmap.spec ~window:49 ());
    ]
  in
  List.iter (fun v -> Alcotest.(check bool) "descriptor differs" true (base <> v)) variants

let test_simcache_disabled () =
  Simcache.with_dir None (fun () ->
      Simcache.reset_stats ();
      let descriptor =
        Simcache.descriptor ~kind:"test" ~workload:"w" ~trace_len:10 ~configs:[ l1 ] ~spec
      in
      Simcache.store ~descriptor (sample_sections ());
      Alcotest.(check bool) "lookup disabled" true (Simcache.lookup ~descriptor = None);
      let s = Simcache.stats () in
      Alcotest.(check int) "no traffic when disabled" 0 (s.Simcache.stores + s.Simcache.hits))

(* --- streaming builders vs recorded references (satellite e) --- *)

let workloads () =
  List.filteri (fun i _ -> i < 4) (Suite.of_suite Workload.Spec)

let trace_len = 4_000
let l2 = Cache.config ~sets:256 ~ways:8 ()
let l3 = Cache.config ~sets:512 ~ways:16 ()

let test_build_l1_matches_reference () =
  let ws = workloads () in
  let configs = [ l1; Cache.config ~sets:32 ~ways:4 () ] in
  let reference = Cbox_dataset.build_l1_reference spec ~configs ~trace_len ws in
  Simcache.with_dir None (fun () ->
      List.iter
        (fun domains ->
          let got =
            Dpool.with_domains domains (fun () -> Cbox_dataset.build_l1 spec ~configs ~trace_len ws)
          in
          Alcotest.(check bool)
            (Printf.sprintf "build_l1 bit-identical at %d domains" domains)
            true (data_eq reference got))
        [ 1; 4 ])

let test_build_hierarchy_matches_reference () =
  let ws = workloads () in
  let reference = Cbox_dataset.build_hierarchy_reference spec ~l1 ~l2 ~l3 ~trace_len ws in
  Simcache.with_dir None (fun () ->
      List.iter
        (fun domains ->
          let got =
            Dpool.with_domains domains (fun () ->
                Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len ws)
          in
          Alcotest.(check bool)
            (Printf.sprintf "build_hierarchy bit-identical at %d domains" domains)
            true (data_eq reference got))
        [ 1; 4 ])

let test_build_prefetch_matches_reference () =
  let ws = workloads () in
  let kind = Prefetch.Next_line in
  let reference = Cbox_dataset.build_prefetch_reference spec ~config:l1 ~kind ~trace_len ws in
  Simcache.with_dir None (fun () ->
      List.iter
        (fun domains ->
          let got =
            Dpool.with_domains domains (fun () ->
                Cbox_dataset.build_prefetch spec ~config:l1 ~kind ~trace_len ws)
          in
          Alcotest.(check bool)
            (Printf.sprintf "build_prefetch bit-identical at %d domains" domains)
            true (data_eq reference got))
        [ 1; 4 ])

let test_builders_through_simcache () =
  (* Cold (stores) then warm (hits): both must equal the uncached
     reference bit-for-bit, including across domain counts. *)
  let ws = workloads () in
  let reference = Cbox_dataset.build_hierarchy_reference spec ~l1 ~l2 ~l3 ~trace_len ws in
  with_tmp_cache (fun _dir ->
      Simcache.reset_stats ();
      let cold =
        Dpool.with_domains 1 (fun () -> Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len ws)
      in
      Alcotest.(check bool) "cold run stores" true ((Simcache.stats ()).Simcache.stores > 0);
      Alcotest.(check bool) "cold bit-identical" true (data_eq reference cold);
      Simcache.reset_stats ();
      List.iter
        (fun domains ->
          let warm =
            Dpool.with_domains domains (fun () ->
                Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len ws)
          in
          Alcotest.(check bool)
            (Printf.sprintf "warm bit-identical at %d domains" domains)
            true (data_eq reference warm))
        [ 1; 4 ];
      let s = Simcache.stats () in
      Alcotest.(check bool) "warm runs hit" true (s.Simcache.hits > 0);
      Alcotest.(check int) "warm runs never simulate" 0 s.Simcache.misses)

(* --- golden per-level counts through the observer path --- *)

let lcg state = ((state * 1664525) + 1013904223) land 0x3FFFFFFF

let streaming_trace n = Array.init n (fun i -> i * 8 mod (256 * 1024))

let mixed_trace n =
  let state = ref 12345 in
  Array.init n (fun i ->
      match i / 1000 mod 3 with
      | 0 -> i mod 64 * block
      | 1 ->
        state := lcg !state;
        (!state mod (1024 * 1024)) land lnot 7
      | _ -> (n - i) mod 512 * 16)

let strided_trace n =
  Array.init n (fun i ->
      let phase = i / 2000 mod 4 in
      let stride = [| 8; 64; 256; 1024 |].(phase) in
      i mod 2000 * stride mod (2 * 1024 * 1024))

(* Same traces, configs and pins as test_golden.ml — but counted through
   [Hierarchy.run_observed], the streaming builders' event source, instead
   of the recorded per-level statistics. *)
let golden_observed =
  [
    ("streaming", streaming_trace 12_000,
     [ (12000, 10500, 1500); (1500, 0, 1500); (1500, 0, 1500) ]);
    ("mixed", mixed_trace 12_000, [ (12000, 7554, 4446); (4446, 646, 3800); (3800, 122, 3678) ]);
    ("strided", strided_trace 12_000,
     [ (12000, 4000, 8000); (8000, 2000, 6000); (6000, 875, 5125) ]);
  ]

let test_observed_golden (name, trace, expect) () =
  let golden_l1 = Cache.config ~sets:64 ~ways:8 () in
  List.iter
    (fun domains ->
      Dpool.with_domains domains (fun () ->
          let h = Hierarchy.create ~l2 ~l3 ~l1:golden_l1 () in
          let nlevels = Array.length (Hierarchy.levels h) in
          let acc = Array.make nlevels 0
          and hits = Array.make nlevels 0
          and misses = Array.make nlevels 0 in
          Hierarchy.run_observed h trace ~f:(fun level _addr hit ->
              acc.(level) <- acc.(level) + 1;
              if hit then hits.(level) <- hits.(level) + 1
              else misses.(level) <- misses.(level) + 1);
          let got = List.init nlevels (fun i -> (acc.(i), hits.(i), misses.(i))) in
          Alcotest.(check (list (triple int int int)))
            (Printf.sprintf "%s observed per-level counts (%d domains)" name domains)
            expect got))
    [ 1; 4 ]

let suite =
  ( "dataset",
    [
      QCheck_alcotest.to_alcotest test_accum_matches_trace;
      Alcotest.test_case "accum: short trace yields nothing" `Quick test_accum_empty;
      QCheck_alcotest.to_alcotest test_digest_sub;
      Alcotest.test_case "simcache: roundtrip" `Quick test_simcache_roundtrip;
      Alcotest.test_case "simcache: corruption ignored+healed" `Quick test_simcache_corruption;
      Alcotest.test_case "simcache: stale formats ignored" `Quick test_simcache_stale_formats;
      Alcotest.test_case "simcache: descriptor keys distinct" `Quick test_simcache_descriptor_keys;
      Alcotest.test_case "simcache: disabled is inert" `Quick test_simcache_disabled;
      Alcotest.test_case "build_l1 = reference (1 and 4 domains)" `Quick
        test_build_l1_matches_reference;
      Alcotest.test_case "build_hierarchy = reference (1 and 4 domains)" `Quick
        test_build_hierarchy_matches_reference;
      Alcotest.test_case "build_prefetch = reference (1 and 4 domains)" `Quick
        test_build_prefetch_matches_reference;
      Alcotest.test_case "builders through simcache (cold+warm)" `Quick
        test_builders_through_simcache;
    ]
    @ List.map
        (fun ((name, _, _) as case) ->
          Alcotest.test_case ("observed golden: " ^ name) `Quick (test_observed_golden case))
        golden_observed )
