(* Crash-safe training: checkpoint container integrity, optimizer/PRNG state
   round-trips, exact resume after a simulated crash, divergence rollback,
   and the fault-injection harness that drives all of it. *)

let feq tol = Alcotest.(check (float tol))

let temp_dir () =
  let d = Filename.temp_file "cbox_resil" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let no_stray_tmp dir =
  Array.for_all (fun f -> not (Filename.check_suffix f ".tmp")) (Sys.readdir dir)

(* --- checkpoint container --- *)

let test_checkpoint_v2_exact_roundtrip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.ckpt" in
  let rng = Prng.create 7 in
  (* Values with full double-precision mantissas: the v2 container must
     round-trip them bit-for-bit (v1 stored float32 and could not). *)
  let p = Param.create "w" (Tensor.randn rng [| 3; 5 |]) in
  let aux = Array.init 7 (fun _ -> Prng.float rng 1.0) in
  let meta = [ ("prng", "12345678901234"); ("note", "line1\nline2 \"quoted\"") ] in
  Checkpoint.save ~meta path ~params:[ p ] ~state:[ ("aux", aux) ];
  Alcotest.(check bool) "atomic write leaves no temp file" true (no_stray_tmp dir);
  let q = Param.create "w" (Tensor.zeros [| 3; 5 |]) in
  let aux' = Array.make 7 0.0 in
  let c = Checkpoint.read path in
  Alcotest.(check int) "version" 2 (Checkpoint.version c);
  Alcotest.(check (list (pair string string))) "meta" meta (Checkpoint.meta c);
  Checkpoint.restore c ~params:[ q ] ~state:[ ("aux", aux') ];
  let bits t = Array.map Int64.bits_of_float (Tensor.to_array t) in
  Alcotest.(check bool) "params bit-identical" true
    (bits p.Param.value = bits q.Param.value);
  Alcotest.(check bool) "state bit-identical" true
    (Array.map Int64.bits_of_float aux = Array.map Int64.bits_of_float aux');
  rm_rf dir

let test_checkpoint_corruption_property =
  (* Any single corrupted byte must surface as [Failure] at load — never a
     crash with another exception and never silently wrong weights. *)
  QCheck.Test.make ~name:"corrupt any byte -> load fails with Failure" ~count:100
    QCheck.(int_range 0 10_000)
    (fun offset ->
      let dir = temp_dir () in
      let path = Filename.concat dir "c.ckpt" in
      let rng = Prng.create 11 in
      let p = Param.create "layer.w" (Tensor.randn rng [| 4; 4 |]) in
      Checkpoint.save ~meta:[ ("k", "v") ] path ~params:[ p ]
        ~state:[ ("s", [| 1.0; 2.0; 3.0 |]) ];
      Faultinject.corrupt_byte path ~offset;
      let ok =
        match Checkpoint.load path ~params:[ p ] ~state:[ ("s", [| 0.0; 0.0; 0.0 |]) ] with
        | () -> false (* corruption accepted: the checksum failed its job *)
        | exception Failure _ -> true
        | exception _ -> false
      in
      rm_rf dir;
      ok)

let test_checkpoint_v1_compat () =
  (* Hand-write a v1 file (magic CBOXCKPT1, u32 count, f32 payload, no
     checksum) and check it still loads. *)
  let dir = temp_dir () in
  let path = Filename.concat dir "v1.ckpt" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "CBOXCKPT1";
  Buffer.add_int32_le buf 2l;
  let entry name dims data =
    Buffer.add_int32_le buf (Int32.of_int (String.length name));
    Buffer.add_string buf name;
    Buffer.add_int32_le buf (Int32.of_int (Array.length dims));
    Array.iter (fun d -> Buffer.add_int32_le buf (Int32.of_int d)) dims;
    Array.iter (fun v -> Buffer.add_int32_le buf (Int32.bits_of_float v)) data
  in
  entry "layer.weight" [| 2; 2 |] [| 1.5; -2.25; 0.5; 4.0 |];
  entry "layer.running" [| 2 |] [| 0.25; -1.0 |];
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc;
  let c = Checkpoint.read path in
  Alcotest.(check int) "v1 detected" 1 (Checkpoint.version c);
  Alcotest.(check (list (pair string string))) "v1 has no meta" [] (Checkpoint.meta c);
  let p = Param.create "layer.weight" (Tensor.zeros [| 2; 2 |]) in
  let st = [| 0.0; 0.0 |] in
  Checkpoint.restore c ~params:[ p ] ~state:[ ("layer.running", st) ];
  Alcotest.(check (array (float 1e-6))) "v1 weights" [| 1.5; -2.25; 0.5; 4.0 |]
    (Tensor.to_array p.Param.value);
  Alcotest.(check (array (float 1e-6))) "v1 state" [| 0.25; -1.0 |] st;
  rm_rf dir

(* --- optimizer / PRNG state round-trips --- *)

let test_adam_state_roundtrip () =
  (* Two Adam optimizers over identical params; after syncing moments via
     state/set_state, further identical steps stay bit-identical — i.e. the
     moments really round-trip instead of silently resetting to zero. *)
  let mk () = Param.create "x" (Tensor.of_array [| 2 |] [| 1.0; -2.0 |]) in
  let loss p = Value.mse_loss (Value.of_param p) (Tensor.of_array [| 2 |] [| 3.0; 0.5 |]) in
  let steps opt p k =
    for _ = 1 to k do
      Optimizer.zero_grad opt;
      Value.backward (loss p);
      Optimizer.step opt
    done
  in
  let p1 = mk () in
  let o1 = Optimizer.adam ~lr:0.05 [ p1 ] in
  steps o1 p1 5;
  let p2 = Param.create "x" (Tensor.copy p1.Param.value) in
  let o2 = Optimizer.adam ~lr:0.9 [ p2 ] in
  (* deliberately different lr: set_state must restore it *)
  Optimizer.set_state o2 (Optimizer.state o1);
  feq 1e-12 "lr restored" (Optimizer.lr o1) (Optimizer.lr o2);
  steps o1 p1 5;
  steps o2 p2 5;
  Alcotest.(check bool) "trajectories bit-identical" true
    (Tensor.to_array p1.Param.value = Tensor.to_array p2.Param.value)

let test_adam_state_missing_entry () =
  let p = Param.create "x" (Tensor.zeros [| 1 |]) in
  let o = Optimizer.adam ~lr:0.1 [ p ] in
  (try
     Optimizer.set_state o [ ("lr", [| 0.1 |]) ];
     Alcotest.fail "expected Failure"
   with Failure _ -> ())

let test_prng_state_roundtrip () =
  let g = Prng.create 99 in
  for _ = 1 to 10 do
    ignore (Prng.next_int64 g)
  done;
  let s = Prng.state g in
  let a = Array.init 8 (fun _ -> Prng.next_int64 g) in
  Prng.set_state g s;
  let b = Array.init 8 (fun _ -> Prng.next_int64 g) in
  Alcotest.(check bool) "stream reproduced" true (a = b)

(* --- trace_io hardening --- *)

let test_trace_io_trailing_garbage () =
  let dir = temp_dir () in
  let path = Filename.concat dir "t.bin" in
  let trace = Array.init 50 (fun i -> i * 64) in
  Trace_io.write_binary path trace;
  Alcotest.(check bool) "atomic write leaves no temp file" true (no_stray_tmp dir);
  Alcotest.(check bool) "clean roundtrip" true (Trace_io.read_binary path = trace);
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  output_string oc "junk";
  close_out oc;
  (try
     ignore (Trace_io.read_binary path);
     Alcotest.fail "expected Failure on trailing bytes"
   with Failure msg ->
     Alcotest.(check bool) "message names the problem" true
       (String.length msg > 0
       && String.sub msg 0 (String.length "Trace_io.read_binary") = "Trace_io.read_binary"));
  rm_rf dir

(* --- run journal --- *)

let test_runlog_roundtrip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "run.jsonl" in
  Runlog.with_journal path (fun j ->
      Runlog.event j "driver_start" [ ("driver", Runlog.S "rq1") ];
      Runlog.event j "driver_end" [ ("driver", Runlog.S "rq1"); ("seconds", Runlog.F 1.5) ];
      Runlog.event j "note" [ ("msg", Runlog.S "with \"quotes\" and\nnewline") ]);
  Alcotest.(check int) "three lines" 3 (List.length (Runlog.events path));
  Alcotest.(check (list string)) "completed drivers" [ "rq1" ] (Runlog.completed_drivers path);
  (match Runlog.events ~kind:"note" path with
  | [ line ] ->
    Alcotest.(check (option string)) "escaped field round-trips"
      (Some "with \"quotes\" and\nnewline") (Runlog.field line "msg")
  | other -> Alcotest.failf "expected one note event, got %d" (List.length other));
  rm_rf dir

let test_run_driver_skips_completed () =
  let dir = temp_dir () in
  let path = Filename.concat dir "sweep.jsonl" in
  let runs = ref 0 in
  let body () =
    incr runs;
    !runs
  in
  Runlog.with_journal path (fun j ->
      Alcotest.(check (option int)) "first run executes" (Some 1)
        (Experiments.run_driver ~journal:j ~name:"rq9" body));
  Runlog.with_journal path (fun j ->
      Alcotest.(check (option int)) "second run skipped" None
        (Experiments.run_driver ~journal:j ~name:"rq9" body);
      Alcotest.(check (option int)) "other driver still runs" (Some 2)
        (Experiments.run_driver ~journal:j ~name:"rq10" body));
  rm_rf dir

(* --- end-to-end: exact resume and divergence recovery --- *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()
let tiny_cache = Cache.config ~sets:4 ~ways:2 ()

let tiny_workload name seed =
  Workload.make ~name ~suite:Workload.Spec ~group:name (fun n ->
      let rng = Prng.create seed in
      Array.init n (fun i ->
          if Prng.float rng 1.0 < 0.7 then (i mod 32) * 8 else Prng.int rng 8192 * 64))

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_samples () =
  Cbox_dataset.to_samples
    (Cbox_dataset.build_l1 tiny_spec ~configs:[ tiny_cache ] ~trace_len:600
       [ tiny_workload "r1" 5; tiny_workload "r2" 6 ])

let model_bits model =
  List.map
    (fun (p : Param.t) -> Array.map Int64.bits_of_float (Tensor.to_array p.Param.value))
    (Cbgan.generator_params model @ Cbgan.discriminator_params model)

let stats_equal (a : Cbox_train.epoch_stats list) (b : Cbox_train.epoch_stats list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Cbox_train.epoch_stats) (y : Cbox_train.epoch_stats) ->
         x.Cbox_train.epoch = y.Cbox_train.epoch
         && Int64.bits_of_float x.Cbox_train.g_adv = Int64.bits_of_float y.Cbox_train.g_adv
         && Int64.bits_of_float x.Cbox_train.g_l1 = Int64.bits_of_float y.Cbox_train.g_l1
         && Int64.bits_of_float x.Cbox_train.d_loss = Int64.bits_of_float y.Cbox_train.d_loss
         && x.Cbox_train.batches = y.Cbox_train.batches)
       a b

let batches_per_epoch samples batch_size =
  (List.length samples + batch_size - 1) / batch_size

(* Train 4 epochs straight vs 2 epochs + kill mid-3rd + resume: epoch stats
   and every final parameter must agree bit-for-bit. *)
let run_exact_resume ~corrupt_latest () =
  let samples = tiny_samples () in
  let nb = batches_per_epoch samples 2 in
  Alcotest.(check bool) "enough batches for a mid-epoch kill" true (nb >= 2);
  let opts dir journal =
    {
      (Cbox_train.default_options ~epochs:4 ~batch_size:2 ~snapshot_every:2 ~snapshot_dir:dir
         ?journal ())
      with
      Cbox_train.lr = 1e-3;
      seed = 4242;
    }
  in
  (* Straight run (snapshots to a throwaway dir so the code path is the
     same; they are never read back). *)
  let straight_dir = temp_dir () in
  let straight = Cbgan.create ~seed:21 tiny_model_config in
  let straight_stats =
    Cbox_train.train straight tiny_spec (opts straight_dir None) samples
  in
  (* Interrupted run: kill at an arbitrary batch mid-3rd-epoch (an odd
     global index, so the latest snapshot is strictly older than the kill
     point and resume must replay batches). *)
  let dir = temp_dir () in
  let journal = Filename.concat dir "run.jsonl" in
  let killed = Cbgan.create ~seed:21 tiny_model_config in
  Faultinject.arm Faultinject.Kill ~at_batch:((2 * nb) + 1);
  (try
     ignore (Cbox_train.train killed tiny_spec (opts dir (Some journal)) samples);
     Alcotest.fail "expected Faultinject.Killed"
   with Faultinject.Killed b -> Alcotest.(check int) "killed at the armed batch" ((2 * nb) + 1) b);
  Faultinject.disarm ();
  if corrupt_latest then begin
    (* The newest snapshot is corrupted (as if the crash raced the write on
       a non-atomic filesystem): resume must journal it and fall back to
       the previous snapshot, still bit-identically. *)
    let snaps =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
      |> List.sort compare |> List.rev
    in
    Alcotest.(check bool) "several snapshots on disk" true (List.length snaps >= 2);
    Faultinject.corrupt_byte (Filename.concat dir (List.hd snaps)) ~offset:64
  end;
  (* Resume in a fresh model (fresh process simulation). *)
  let resumed = Cbgan.create ~seed:21 tiny_model_config in
  let resumed_stats =
    Cbox_train.train ~resume:true resumed tiny_spec (opts dir (Some journal)) samples
  in
  Alcotest.(check bool) "epoch stats bit-identical" true (stats_equal straight_stats resumed_stats);
  Alcotest.(check bool) "final weights bit-identical" true
    (model_bits straight = model_bits resumed);
  Alcotest.(check bool) "journal records the resume" true
    (Runlog.events ~kind:"resume" journal <> []);
  if corrupt_latest then
    Alcotest.(check bool) "journal records the corrupt snapshot" true
      (Runlog.events ~kind:"snapshot_corrupt" journal <> []);
  Alcotest.(check bool) "snapshot rotation keeps at most 3" true
    (List.length
       (Sys.readdir dir |> Array.to_list
       |> List.filter (fun f -> Filename.check_suffix f ".ckpt"))
    <= 3);
  rm_rf straight_dir;
  rm_rf dir

let test_exact_resume () = run_exact_resume ~corrupt_latest:false ()
let test_resume_skips_corrupt_snapshot () = run_exact_resume ~corrupt_latest:true ()

let test_nan_triggers_rollback_and_lr_halving () =
  let samples = tiny_samples () in
  let nb = batches_per_epoch samples 2 in
  let dir = temp_dir () in
  let journal = Filename.concat dir "nan.jsonl" in
  let model = Cbgan.create ~seed:22 tiny_model_config in
  let options =
    {
      (Cbox_train.default_options ~epochs:3 ~batch_size:2 ~journal ())
      with
      Cbox_train.lr = 1e-3;
      seed = 777;
    }
  in
  (* Poison a generator gradient mid-2nd-epoch; the sentinel must roll back
     to the epoch-1 boundary, halve the LR and complete the run. *)
  Faultinject.arm Faultinject.Nan_grad ~at_batch:(nb + 2);
  let history = Cbox_train.train model tiny_spec options samples in
  Faultinject.disarm ();
  Alcotest.(check int) "all epochs completed despite the NaN" 3 (List.length history);
  let divergences = Runlog.events ~kind:"divergence" journal in
  let rollbacks = Runlog.events ~kind:"rollback" journal in
  Alcotest.(check int) "one divergence journalled" 1 (List.length divergences);
  Alcotest.(check int) "one rollback journalled" 1 (List.length rollbacks);
  (match divergences with
  | [ line ] ->
    Alcotest.(check (option string)) "sentinel saw the NaN gradient norm"
      (Some "g_grad_norm") (Runlog.field line "source")
  | _ -> ());
  (match rollbacks with
  | [ line ] ->
    (* lr is numeric JSON; check the halved value appears on the line. *)
    let expected = Printf.sprintf "%.17g" 5e-4 in
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "rollback halved the learning rate" true (contains line expected)
  | _ -> ());
  rm_rf dir

let test_divergence_retries_exhausted () =
  let samples = tiny_samples () in
  let dir = temp_dir () in
  let journal = Filename.concat dir "abort.jsonl" in
  let model = Cbgan.create ~seed:23 tiny_model_config in
  let options =
    {
      (Cbox_train.default_options ~epochs:2 ~batch_size:2 ~journal ())
      with
      Cbox_train.lr = 1e-3;
      seed = 778;
      max_retries = 0;
    }
  in
  Faultinject.arm Faultinject.Nan_grad ~at_batch:1;
  (try
     ignore (Cbox_train.train model tiny_spec options samples);
     Alcotest.fail "expected Failure once retries are exhausted"
   with Failure _ -> ());
  Faultinject.disarm ();
  Alcotest.(check bool) "abort journalled" true (Runlog.events ~kind:"abort" journal <> []);
  rm_rf dir

let suite =
  ( "resilience",
    [
      Alcotest.test_case "checkpoint v2 exact roundtrip" `Quick test_checkpoint_v2_exact_roundtrip;
      QCheck_alcotest.to_alcotest test_checkpoint_corruption_property;
      Alcotest.test_case "checkpoint v1 compatibility" `Quick test_checkpoint_v1_compat;
      Alcotest.test_case "adam state roundtrip" `Quick test_adam_state_roundtrip;
      Alcotest.test_case "adam state missing entry" `Quick test_adam_state_missing_entry;
      Alcotest.test_case "prng state roundtrip" `Quick test_prng_state_roundtrip;
      Alcotest.test_case "trace_io trailing garbage" `Quick test_trace_io_trailing_garbage;
      Alcotest.test_case "runlog roundtrip" `Quick test_runlog_roundtrip;
      Alcotest.test_case "run_driver skips completed" `Quick test_run_driver_skips_completed;
      Alcotest.test_case "exact resume after kill" `Slow test_exact_resume;
      Alcotest.test_case "resume skips corrupt snapshot" `Slow test_resume_skips_corrupt_snapshot;
      Alcotest.test_case "nan -> rollback + lr halving" `Slow test_nan_triggers_rollback_and_lr_halving;
      Alcotest.test_case "divergence retries exhausted" `Quick test_divergence_retries_exhausted;
    ] )
