(* Workspace arena semantics and the steady-state no-allocation guarantee.

   The aliasing tests are the load-bearing ones: with the arena enabled,
   interleaved kernels of different shapes borrow overlapping storage, and
   a recycling bug would corrupt results in ways the plain unit tests (one
   kernel at a time) can never see. Every numerical check therefore compares
   arena-enabled output against the same computation with the arena
   disabled (fresh allocations, the pre-arena behaviour). *)

let with_ws enabled f =
  let was = Workspace.enabled () in
  Workspace.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Workspace.set_enabled was) f

(* --- with_buf semantics --- *)

let test_shape_and_zero () =
  with_ws true (fun () ->
      Workspace.with_buf ~zero:true [| 3; 5 |] (fun t ->
          Alcotest.(check (array int)) "shape" [| 3; 5 |] (Tensor.shape t);
          Alcotest.(check int) "numel" 15 (Tensor.numel t);
          Array.iter
            (fun v -> Alcotest.(check (float 0.0)) "zeroed" 0.0 v)
            (Tensor.to_array t)))

let test_reuse_same_class () =
  with_ws true (fun () ->
      (* Poison a slot, then borrow a same-class shape without ~zero: the
         recycled buffer is allowed to hold stale garbage — which proves the
         slot was actually reused rather than freshly allocated. *)
      let a0 = Workspace.alloc_count () in
      Workspace.with_buf [| 64 |] (fun t -> Tensor.fill t 42.0);
      Workspace.with_buf [| 8; 8 |] (fun t ->
          Alcotest.(check (float 0.0)) "recycled slot" 42.0 (Tensor.get t 0));
      (* 64 and 8x8 share a size class, so at most one backing alloc. *)
      Alcotest.(check bool) "at most one fresh alloc" true
        (Workspace.alloc_count () - a0 <= 1))

let test_nested_borrows_distinct () =
  with_ws true (fun () ->
      Workspace.with_buf ~zero:true [| 100 |] (fun outer ->
          Workspace.with_buf ~zero:true [| 100 |] (fun inner ->
              Tensor.fill inner 7.0;
              (* A broken arena would hand out the same slot twice. *)
              Alcotest.(check (float 0.0)) "outer untouched" 0.0 (Tensor.get outer 0));
          Tensor.fill outer 3.0;
          Alcotest.(check (float 0.0)) "outer writable after inner release" 3.0
            (Tensor.get outer 0)))

let test_release_on_raise () =
  with_ws true (fun () ->
      let sentinel = Failure "boom" in
      (try
         Workspace.with_buf [| 32 |] (fun t ->
             Tensor.fill t 1.0;
             raise sentinel)
       with Failure _ -> ());
      (* The slot must be free again: two successive borrows of the class
         must not allocate fresh backing storage. *)
      let a0 = Workspace.alloc_count () in
      Workspace.with_buf [| 32 |] (fun _ -> ());
      Workspace.with_buf [| 32 |] (fun _ -> ());
      Alcotest.(check int) "no allocs after raise-release" 0
        (Workspace.alloc_count () - a0))

let test_disabled_fresh () =
  with_ws false (fun () ->
      let b0 = Workspace.borrow_count () in
      Workspace.with_buf ~zero:true [| 16 |] (fun t ->
          Alcotest.(check (float 0.0)) "zeroed when disabled" 0.0 (Tensor.get t 0));
      Alcotest.(check int) "disabled borrows not counted" 0
        (Workspace.borrow_count () - b0))

(* --- aliasing regressions --- *)

let conv_pair ~seed ~ic ~oc ~size =
  let rng = Prng.create seed in
  let x = Tensor.randn rng [| 2; ic; size; size |] in
  let w = Tensor.randn rng [| oc; ic; 4; 4 |] in
  (x, w)

let test_interleaved_conv_shapes () =
  (* Two convolutions of different shapes, alternated: their column buffers
     land in the same arena slots across calls. Results must match the
     arena-disabled reference exactly (same kernel, same accumulation
     order — the arena only changes where scratch lives). *)
  let xa, wa = conv_pair ~seed:5 ~ic:3 ~oc:8 ~size:16 in
  let xb, wb = conv_pair ~seed:6 ~ic:5 ~oc:4 ~size:12 in
  let run () =
    List.init 3 (fun _ ->
        let ya = Conv.conv2d ~x:xa ~weight:wa ~bias:None ~stride:2 ~pad:1 in
        let yb = Conv.conv2d ~x:xb ~weight:wb ~bias:None ~stride:2 ~pad:1 in
        (Tensor.to_array ya, Tensor.to_array yb))
  in
  let pooled = with_ws true run in
  let fresh = with_ws false run in
  List.iteri
    (fun i ((pa, pb), (fa, fb)) ->
      Alcotest.(check bool)
        (Printf.sprintf "round %d conv A identical" i)
        true
        (Array.for_all2 Float.equal pa fa);
      Alcotest.(check bool)
        (Printf.sprintf "round %d conv B identical" i)
        true
        (Array.for_all2 Float.equal pb fb))
    (List.combine pooled fresh)

let test_conv_backward_aliasing () =
  let x, w = conv_pair ~seed:9 ~ic:4 ~oc:6 ~size:12 in
  let osz = Conv.out_size ~size:12 ~kernel:4 ~stride:2 ~pad:1 in
  let gout = Tensor.randn (Prng.create 10) [| 2; 6; osz; osz |] in
  let run () =
    let gw = Tensor.zeros [| 6; 4; 4; 4 |] in
    let gb = Some (Tensor.zeros [| 6 |]) in
    let gx =
      Conv.conv2d_backward ~x ~weight:w ~gout ~stride:2 ~pad:1 ~grad_weight:gw
        ~grad_bias:gb
    in
    (Tensor.to_array gx, Tensor.to_array gw)
  in
  let pgx, pgw = with_ws true run in
  let fgx, fgw = with_ws false run in
  Alcotest.(check bool) "gx identical" true (Array.for_all2 Float.equal pgx fgx);
  Alcotest.(check bool) "gw identical" true (Array.for_all2 Float.equal pgw fgw)

let test_parallel_conv_aliasing () =
  (* Sample-parallel forward: each lane borrows from its own domain's
     arena; outputs must stay identical to serial + arena off. *)
  let x, w = conv_pair ~seed:11 ~ic:6 ~oc:8 ~size:16 in
  let run () = Tensor.to_array (Conv.conv2d ~x ~weight:w ~bias:None ~stride:2 ~pad:1) in
  let fresh = Dpool.with_domains 1 (fun () -> with_ws false run) in
  List.iter
    (fun d ->
      let pooled = Dpool.with_domains d (fun () -> with_ws true run) in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d pooled conv identical" d)
        true
        (Array.for_all2 Float.equal fresh pooled))
    [ 1; 2; 4 ]

(* --- steady state: a warmed-up training step allocates nothing --- *)

let test_training_steady_state () =
  with_ws true (fun () ->
      let spec = (Experiments.default_scale ()).Experiments.spec in
      let ws =
        List.filteri (fun i _ -> i < 1) (Suite.split (Suite.all ())).Suite.train
      in
      let data =
        Cbox_dataset.build_l1 spec ~configs:[ Experiments.l1_64s12w ] ~trace_len:4000 ws
      in
      let samples = Cbox_dataset.to_samples data in
      let model = Cbgan.create ~seed:7 (Cbgan.default_config ~ngf:4 ~ndf:4 ()) in
      let options =
        { (Cbox_train.default_options ~epochs:1 ~batch_size:2 ()) with
          Cbox_train.domains = Some 1;
        }
      in
      let step () = ignore (Cbox_train.train model spec options samples) in
      (* Warmup: populate every size class the step's kernels borrow. *)
      step ();
      step ();
      let a0 = Workspace.alloc_count () in
      let b0 = Workspace.borrow_count () in
      step ();
      let fresh_allocs = Workspace.alloc_count () - a0 in
      let borrows = Workspace.borrow_count () - b0 in
      Alcotest.(check bool) "steady step borrows scratch" true (borrows > 0);
      Alcotest.(check int) "steady step allocates no scratch" 0 fresh_allocs)

let suite =
  ( "workspace",
    [
      Alcotest.test_case "with_buf shape and zero" `Quick test_shape_and_zero;
      Alcotest.test_case "slot reuse within a size class" `Quick test_reuse_same_class;
      Alcotest.test_case "nested borrows are distinct" `Quick test_nested_borrows_distinct;
      Alcotest.test_case "slot released on raise" `Quick test_release_on_raise;
      Alcotest.test_case "disabled mode allocates fresh" `Quick test_disabled_fresh;
      Alcotest.test_case "interleaved conv shapes (aliasing)" `Quick
        test_interleaved_conv_shapes;
      Alcotest.test_case "conv backward aliasing" `Quick test_conv_backward_aliasing;
      Alcotest.test_case "parallel conv aliasing" `Quick test_parallel_conv_aliasing;
      Alcotest.test_case "training step steady-state allocations" `Slow
        test_training_steady_state;
    ] )
