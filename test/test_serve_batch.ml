(* Batched serving: dynamic micro-batching policy (virtual clock), the
   incremental line-framing buffer, the select reactor's ordering and
   rejection paths, bit-identity of batched vs sequential inference, and
   counter/breaker atomicity under concurrent batch completions. *)

let temp_dir () =
  let d = Filename.temp_file "cbox_sbatch" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float

(* --- batcher: coalescing policy under a virtual clock --- *)

let batcher_cfg =
  { Batcher.max_batch = 4; max_linger_s = 0.02; deadline_margin_s = 0.05 }

let test_batcher_linger_flush () =
  let t = ref 100.0 in
  let b = Batcher.create ~now:(fun () -> !t) batcher_cfg in
  Batcher.push b "a";
  Batcher.push b "b";
  Alcotest.(check bool) "not due immediately" false (Batcher.due b);
  Alcotest.(check (option (float 1e-9))) "obligation is enqueue + linger" (Some 100.02)
    (Batcher.next_flush b);
  t := 100.019;
  Alcotest.(check bool) "not due just before linger" false (Batcher.due b);
  Alcotest.(check (list string)) "take refuses before due" [] (Batcher.take b);
  t := 100.02;
  Alcotest.(check bool) "due at linger" true (Batcher.due b);
  Alcotest.(check (list string)) "FIFO batch" [ "a"; "b" ] (Batcher.take b);
  Alcotest.(check int) "emptied" 0 (Batcher.length b);
  Alcotest.(check (pair int int)) "counted as a timed flush" (0, 1) (Batcher.flushes b)

let test_batcher_full_batch () =
  let t = ref 5.0 in
  let b = Batcher.create ~now:(fun () -> !t) batcher_cfg in
  List.iter (Batcher.push b) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "full batch due with no time passing" true (Batcher.due b);
  Alcotest.(check (list int)) "take caps at max_batch" [ 1; 2; 3; 4 ] (Batcher.take b);
  Alcotest.(check int) "remainder queued" 1 (Batcher.length b);
  Alcotest.(check (pair int int)) "counted as a full flush" (1, 0) (Batcher.flushes b);
  Alcotest.(check (list int)) "drain ignores obligations" [ 5 ] (Batcher.drain b)

let test_batcher_deadline_flush () =
  let t = ref 50.0 in
  let b = Batcher.create ~now:(fun () -> !t) batcher_cfg in
  (* Deadline 60 ms out, margin 50 ms: must flush within 10 ms — tighter
     than the 20 ms linger. *)
  Batcher.push b ~deadline:(!t +. 0.06) "tight";
  Alcotest.(check (option (float 1e-9))) "deadline tightens the obligation"
    (Some 50.01) (Batcher.next_flush b);
  (* Already inside the margin: flush immediately, not in the past. *)
  Batcher.push b ~deadline:(!t +. 0.01) "urgent";
  Alcotest.(check bool) "deadline-near request forces the flush" true (Batcher.due b);
  Alcotest.(check (list string)) "flush carries the whole queue" [ "tight"; "urgent" ]
    (Batcher.take b)

(* Replaying a random push schedule against a virtual clock: every request
   flushes by its documented obligation
   max(enqueue, min(enqueue + linger, deadline - margin)), and batches
   come out strictly FIFO. *)
let test_batcher_obligation_property =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (pair (float_range 0.0 0.015) (option (float_range 0.0 0.2))))
  in
  QCheck.Test.make ~name:"batcher flushes by obligation, FIFO" ~count:200 gen
    (fun pushes ->
      let t = ref 0.0 in
      let b = Batcher.create ~now:(fun () -> !t) batcher_cfg in
      let flushed = ref [] in
      let flush_now () =
        List.iter (fun item -> flushed := (item, !t) :: !flushed) (Batcher.take b)
      in
      (* Model the daemon's polling loop faithfully: never jump the clock
         past a pending flush obligation without flushing at it. *)
      let advance_to target =
        let rec go () =
          match Batcher.next_flush b with
          | Some at when at <= target ->
            t := Float.max !t at;
            while Batcher.due b do
              flush_now ()
            done;
            go ()
          | _ -> t := Float.max !t target
        in
        go ()
      in
      List.iteri
        (fun i (dt, deadline_off) ->
          advance_to (!t +. dt);
          let deadline = Option.map (fun off -> !t +. off) deadline_off in
          let obligation =
            let linger = !t +. batcher_cfg.Batcher.max_linger_s in
            match deadline with
            | None -> linger
            | Some d ->
              Float.max !t (Float.min linger (d -. batcher_cfg.Batcher.deadline_margin_s))
          in
          Batcher.push b ?deadline (i, obligation);
          while Batcher.due b do
            flush_now ()
          done)
        pushes;
      while Batcher.length b > 0 do
        (match Batcher.next_flush b with
        | Some at -> t := Float.max !t at
        | None -> ());
        while Batcher.due b do
          flush_now ()
        done
      done;
      let flushed = List.rev !flushed in
      let fifo = List.mapi (fun pos ((i, _), _) -> pos = i) flushed in
      List.for_all Fun.id fifo
      && List.for_all
           (fun ((_, obligation), at) -> at <= obligation +. 1e-9)
           flushed)

(* --- incremental line framing --- *)

module Linebuf = Reactor.Linebuf

let feed_all lb chunks = List.concat_map (fun c -> fst (Linebuf.feed lb c)) chunks

let test_linebuf_framings () =
  let stream = "alpha\nbeta\n\ngamma delta\n" in
  let whole = feed_all (Linebuf.create ~max_line:64) [ stream ] in
  let bytewise =
    feed_all (Linebuf.create ~max_line:64)
      (List.init (String.length stream) (fun i -> String.make 1 stream.[i]))
  in
  let ragged =
    feed_all (Linebuf.create ~max_line:64) [ "alp"; "ha\nbe"; "ta\n\ngam"; "ma delta\n" ]
  in
  Alcotest.(check (list string)) "whole-stream framing" [ "alpha"; "beta"; ""; "gamma delta" ] whole;
  Alcotest.(check (list string)) "byte-by-byte framing matches" whole bytewise;
  Alcotest.(check (list string)) "ragged chunks match" whole ragged;
  let lb = Linebuf.create ~max_line:64 in
  ignore (Linebuf.feed lb "partial");
  Alcotest.(check int) "partial line pending" 7 (Linebuf.pending lb)

let test_linebuf_overflow () =
  let lb = Linebuf.create ~max_line:8 in
  let lines, overflowed = Linebuf.feed lb "ok\nwaaaaaaaay too long\nnext\n" in
  Alcotest.(check (list string)) "lines before the overflow still delivered" [ "ok" ] lines;
  Alcotest.(check bool) "overflow detected" true overflowed;
  Alcotest.(check bool) "overflow is sticky" true (Linebuf.overflowed lb);
  let lines2, overflowed2 = Linebuf.feed lb "short\n" in
  Alcotest.(check (list string)) "no lines after overflow" [] lines2;
  Alcotest.(check bool) "still overflowed" true overflowed2

let test_linebuf_chunking_property =
  let gen =
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_range 0 120)
           (Gen.frequency [ (6, Gen.printable); (1, Gen.return '\n') ]))
        (list_of_size (Gen.int_range 0 10) (int_range 1 20)))
  in
  QCheck.Test.make ~name:"linebuf framing is chunking-invariant" ~count:300 gen
    (fun (stream, cuts) ->
      let whole = feed_all (Linebuf.create ~max_line:256) [ stream ] in
      let chunks =
        let rec split s = function
          | [] -> if s = "" then [] else [ s ]
          | c :: rest ->
            if String.length s <= c then if s = "" then [] else [ s ]
            else String.sub s 0 c :: split (String.sub s c (String.length s - c)) rest
        in
        split stream cuts
      in
      feed_all (Linebuf.create ~max_line:256) chunks = whole)

(* --- reactor: real sockets, arbitrary framing, ordering, rejection --- *)

let start_reactor ?max_line ~on_line () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "r.sock" in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX sock);
  Unix.listen listener 16;
  Unix.set_nonblock listener;
  let r = Reactor.create ?max_line ~listener () in
  Reactor.set_on_line r (on_line r);
  let th = Thread.create (fun () -> Reactor.run r) () in
  (r, th, listener, sock, dir)

let stop_reactor (r, th, listener, _sock, dir) =
  Reactor.stop r;
  Thread.join th;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  rm_rf dir

let echo _r ticket line = Reactor.resolve ticket ("echo:" ^ line)

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (fd, Unix.in_channel_of_descr fd)

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let test_reactor_framing () =
  let ((_, _, _, sock, _) as h) = start_reactor ~on_line:echo () in
  (* Byte-by-byte delivery. *)
  let fd1, ic1 = connect sock in
  String.iter (fun c -> send fd1 (String.make 1 c)) "hello\nworld\n";
  Alcotest.(check string) "byte-by-byte line 1" "echo:hello" (input_line ic1);
  Alcotest.(check string) "byte-by-byte line 2" "echo:world" (input_line ic1);
  (* Coalesced multi-line chunk, then a chunk split mid-line. *)
  let fd2, ic2 = connect sock in
  send fd2 "a\nb\nc\n";
  let l1 = input_line ic2 in
  let l2 = input_line ic2 in
  let l3 = input_line ic2 in
  Alcotest.(check (list string)) "coalesced chunk" [ "echo:a"; "echo:b"; "echo:c" ]
    [ l1; l2; l3 ];
  send fd2 "ab";
  send fd2 "c\nde";
  send fd2 "f\n";
  Alcotest.(check string) "mid-line split 1" "echo:abc" (input_line ic2);
  Alcotest.(check string) "mid-line split 2" "echo:def" (input_line ic2);
  Unix.close fd1;
  Unix.close fd2;
  stop_reactor h

(* Replies flush strictly in per-connection request order even when later
   requests resolve first. *)
let test_reactor_reply_order () =
  let pending = ref [] in
  let pm = Mutex.create () in
  let collect _r ticket line =
    Mutex.lock pm;
    pending := (ticket, line) :: !pending;
    Mutex.unlock pm
  in
  let ((_, _, _, sock, _) as h) = start_reactor ~on_line:collect () in
  let fd, ic = connect sock in
  send fd "first\nsecond\n";
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Mutex.lock pm;
     let n = List.length !pending in
     Mutex.unlock pm;
     n < 2)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.002
  done;
  (match !pending with
  | [ (tk2, "second"); (tk1, "first") ] ->
    Reactor.resolve tk2 "r:second";
    (* The early answer to the later request must wait for its predecessor. *)
    Thread.delay 0.05;
    Reactor.resolve tk1 "r:first"
  | _ -> Alcotest.fail "expected two pending tickets");
  Alcotest.(check string) "first reply first" "r:first" (input_line ic);
  Alcotest.(check string) "second reply second" "r:second" (input_line ic);
  Unix.close fd;
  stop_reactor h

let test_reactor_oversized_line () =
  let ((_, _, _, sock, _) as h) = start_reactor ~max_line:16 ~on_line:echo () in
  let fd, ic = connect sock in
  send fd ("ok\n" ^ String.make 64 'x' ^ "\n");
  Alcotest.(check string) "line before overflow answered" "echo:ok" (input_line ic);
  (match Sjson.parse (input_line ic) with
  | Ok j ->
    Alcotest.(check (option bool)) "overflow reply is an error" (Some false)
      (bool_field j "ok");
    Alcotest.(check (option string)) "typed bad_request" (Some "bad_request")
      (str_field j "error")
  | Error e -> Alcotest.failf "overflow reply is not JSON: %s" e);
  (match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "expected EOF after overflow, got %S" l);
  Unix.close fd;
  stop_reactor h

let test_reactor_disconnect_mid_request () =
  let ((_, _, _, sock, _) as h) = start_reactor ~on_line:echo () in
  let fd, ic = connect sock in
  send fd "one\ntwo";
  (* Disconnect with the second request cut off mid-line: the partial is
     discarded, the completed request's reply still arrives. *)
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  Alcotest.(check string) "completed request answered" "echo:one" (input_line ic);
  (match input_line ic with
  | exception End_of_file -> ()
  | l -> Alcotest.failf "expected EOF after disconnect, got %S" l);
  Unix.close fd;
  stop_reactor h

(* --- engine: batched vs sequential bit-identity, virtual-clock deadlines --- *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_trace_len = 4 * Heatmap.accesses_per_image tiny_spec

let tiny_trace =
  lazy
    (let rng = Prng.create 31 in
     Array.init tiny_trace_len (fun i ->
         if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64))

let infer_line ?id ?deadline_ms () =
  let trace = Lazy.force tiny_trace in
  Sjson.to_string
    (Sjson.Obj
       ((match id with None -> [] | Some id -> [ ("id", Sjson.Str id) ])
       @ [
           ("op", Sjson.Str "infer");
           ("sets", Sjson.Num 4.0);
           ("ways", Sjson.Num 2.0);
           ( "trace",
             Sjson.Arr (Array.to_list (Array.map (fun a -> Sjson.Num (float_of_int a)) trace))
           );
         ]
       @
       match deadline_ms with
       | None -> []
       | Some ms -> [ ("deadline_ms", Sjson.Num (float_of_int ms)) ]))

let engine ?now ?(replicas = 1) ~model () =
  let cfg =
    {
      (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
      Serve_engine.grace_lo = -1e9;
      grace_hi = 1e9;
      breaker_cooldown_s = 5.0;
      replicas;
    }
  in
  Serve_engine.create ?now ~spec:tiny_spec ~model cfg

let tiny_model = lazy (Cbgan.create ~seed:51 tiny_model_config)

let classify_all e lines =
  List.map
    (fun line ->
      match Serve_engine.classify_line e line with
      | Serve_engine.Batchable item -> item
      | _ -> Alcotest.fail "expected a batchable infer request")
    lines

let hit_rate_bits reply =
  match num_field reply "hit_rate" with
  | Some hr -> Int64.bits_of_float hr
  | None -> Alcotest.failf "reply has no hit_rate: %s" (Sjson.to_string reply)

(* The acceptance property: a coalesced batch through one shared forward
   pass answers bit-identically to the sequential batch-1 path. *)
let test_batched_replies_bit_identical () =
  let model = Lazy.force tiny_model in
  let lines = List.init 8 (fun i -> infer_line ~id:(Printf.sprintf "b%d" i) ()) in
  let sequential =
    let e = engine ~model:(Some model) () in
    List.map
      (fun line ->
        match Serve_engine.handle_line e line with
        | Serve_engine.Reply j -> j
        | Serve_engine.Shutdown_reply _ -> Alcotest.fail "unexpected shutdown")
      lines
  in
  let batched =
    let e = engine ~model:(Some model) () in
    Serve_engine.infer_batch e (classify_all e lines)
  in
  List.iteri
    (fun i (seq, bat) ->
      Alcotest.(check (option string))
        (Printf.sprintf "id %d" i)
        (str_field seq "id") (str_field bat "id");
      Alcotest.(check (option string))
        (Printf.sprintf "source %d" i)
        (Some "model") (str_field bat "source");
      Alcotest.(check int64)
        (Printf.sprintf "hit_rate bits %d" i)
        (hit_rate_bits seq) (hit_rate_bits bat))
    (List.combine sequential batched)

(* The wide-batch conv lowering behind batching is itself bit-identical to
   the per-sample path, for any batch composition. *)
let test_wide_conv_identity =
  let windows = lazy (Heatmap.of_trace tiny_spec (Lazy.force tiny_trace)) in
  QCheck.Test.make ~name:"wide-batch conv lowering is bit-identical" ~count:8
    QCheck.(int_range 2 8)
    (fun n ->
      let model = Lazy.force tiny_model in
      let ws = Lazy.force windows in
      let imgs = List.init n (fun i -> List.nth ws (i mod List.length ws)) in
      let cache = Cache.config ~sets:4 ~ways:2 () in
      let wide_before = Conv.wide_batch () in
      Fun.protect
        ~finally:(fun () -> Conv.set_wide_batch wide_before)
        (fun () ->
          Conv.set_wide_batch false;
          let narrow = Cbox_infer.synthesize model tiny_spec ~batch_size:64 ~cache imgs in
          Conv.set_wide_batch true;
          let wide = Cbox_infer.synthesize model tiny_spec ~batch_size:64 ~cache imgs in
          let bits t =
            List.init (Tensor.numel t) (fun i ->
                Int32.bits_of_float (Bigarray.Array1.get t.Tensor.data i))
          in
          List.for_all2 (fun a b -> bits a = bits b) narrow wide))

(* Replica pool: a cloned replica answers bit-identically to replica 0. *)
let test_replica_clone_identity () =
  let model = Lazy.force tiny_model in
  let e = engine ~replicas:2 ~model:(Some model) () in
  Alcotest.(check int) "pool size" 2 (Serve_engine.replica_count e);
  let lines = List.init 4 (fun i -> infer_line ~id:(Printf.sprintf "r%d" i) ()) in
  let r0 = Serve_engine.infer_batch ~replica:0 e (classify_all e lines) in
  let r1 = Serve_engine.infer_batch ~replica:1 e (classify_all e lines) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check int64)
        (Printf.sprintf "replica hit_rate bits %d" i)
        (hit_rate_bits a) (hit_rate_bits b))
    (List.combine r0 r1)

(* Virtual clock through the batched path: expiry beats everything, and a
   missing model degrades (the ladder holds batch-side). *)
let test_batch_deadline_virtual_clock () =
  let t = ref 1000.0 in
  let e = engine ~now:(fun () -> !t) ~model:None () in
  let expired =
    match Serve_engine.classify_line e (infer_line ~id:"late" ~deadline_ms:1000 ()) with
    | Serve_engine.Batchable item -> item
    | _ -> Alcotest.fail "expected batchable"
  in
  t := 1002.0;
  let fresh =
    match Serve_engine.classify_line e (infer_line ~id:"fresh" ~deadline_ms:1000 ()) with
    | Serve_engine.Batchable item -> item
    | _ -> Alcotest.fail "expected batchable"
  in
  match Serve_engine.infer_batch e [ expired; fresh ] with
  | [ r_late; r_fresh ] ->
    Alcotest.(check (option bool)) "expired not answered" (Some false)
      (bool_field r_late "ok");
    Alcotest.(check (option string)) "typed deadline error" (Some "deadline_exceeded")
      (str_field r_late "error");
    Alcotest.(check (option bool)) "fresh answered" (Some true) (bool_field r_fresh "ok");
    Alcotest.(check (option bool)) "fresh degraded (no model)" (Some true)
      (bool_field r_fresh "degraded");
    Alcotest.(check (option string)) "degradation reason" (Some "model_unavailable")
      (str_field r_fresh "reason")
  | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)

(* --- atomicity under concurrent batch completions --- *)

let test_stats_concurrent_batches () =
  let model = Lazy.force tiny_model in
  let e = engine ~replicas:2 ~model:(Some model) () in
  let items k =
    classify_all e (List.init 8 (fun i -> infer_line ~id:(Printf.sprintf "c%d_%d" k i) ()))
  in
  let items0 = items 0 and items1 = items 1 in
  let before = Serve_engine.stats e in
  let out = Array.make 2 [] in
  let spawn k its =
    Thread.create (fun () -> out.(k) <- Serve_engine.infer_batch ~replica:k e its) ()
  in
  let th0 = spawn 0 items0 and th1 = spawn 1 items1 in
  Thread.join th0;
  Thread.join th1;
  List.iter
    (fun r ->
      Alcotest.(check (option bool)) "batch reply ok" (Some true) (bool_field r "ok"))
    (out.(0) @ out.(1));
  let after = Serve_engine.stats e in
  let d f = f after - f before in
  Alcotest.(check int) "served counted exactly once each" 16
    (d (fun s -> s.Serve_stats.served));
  Alcotest.(check int) "stage timings for every batched request" 16
    (d (fun s -> s.Serve_stats.staged));
  Alcotest.(check int) "two forward passes" 2 (d (fun s -> s.Serve_stats.batches));
  Alcotest.(check int) "batched requests counted" 16
    (d (fun s -> s.Serve_stats.batched_requests));
  Alcotest.(check bool) "max batch at least 8" true (after.Serve_stats.max_batch >= 8);
  Alcotest.(check string) "breaker stays closed on concurrent successes" "closed"
    (Breaker.state_name (Serve_engine.breaker_state e))

let test_breaker_concurrent_failures () =
  let b = Breaker.create ~threshold:3 ~cooldown:1e9 ~now:(fun () -> 0.0) () in
  let hammer () =
    for _ = 1 to 100 do
      Breaker.record_failure b
    done
  in
  let threads = List.init 4 (fun _ -> Thread.create hammer ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no torn failure counts" 400 (Breaker.consecutive_failures b);
  Alcotest.(check int) "exactly one open transition" 1 (Breaker.times_opened b);
  Alcotest.(check string) "open" "open" (Breaker.state_name (Breaker.state b));
  Breaker.record_success b;
  Alcotest.(check string) "success closes" "closed"
    (Breaker.state_name (Breaker.state b))

let test_stats_stage_accounting () =
  let s = Serve_stats.create () in
  Serve_stats.record_stages s ~queue_s:0.010 ~batch_s:0.004 ~infer_s:0.002;
  Serve_stats.record_stages s ~queue_s:0.020 ~batch_s:(-1.0) ~infer_s:0.004;
  Serve_stats.record_batch s ~size:2;
  Serve_stats.record_batch s ~size:6;
  let sum = Serve_stats.snapshot s in
  Alcotest.(check int) "staged" 2 sum.Serve_stats.staged;
  Alcotest.(check (float 1e-6)) "queue mean" 15.0 sum.Serve_stats.queue_ms_mean;
  Alcotest.(check (float 1e-6)) "negative batch wait clamps to 0" 2.0
    sum.Serve_stats.batch_ms_mean;
  Alcotest.(check (float 1e-6)) "infer mean" 3.0 sum.Serve_stats.infer_ms_mean;
  Alcotest.(check int) "batches" 2 sum.Serve_stats.batches;
  Alcotest.(check int) "batched requests" 8 sum.Serve_stats.batched_requests;
  Alcotest.(check int) "max batch" 6 sum.Serve_stats.max_batch;
  Alcotest.(check (float 1e-6)) "mean batch" 4.0 sum.Serve_stats.mean_batch

let suite =
  ( "serve-batch",
    [
      Alcotest.test_case "batcher linger flush" `Quick test_batcher_linger_flush;
      Alcotest.test_case "batcher full batch" `Quick test_batcher_full_batch;
      Alcotest.test_case "batcher deadline flush" `Quick test_batcher_deadline_flush;
      QCheck_alcotest.to_alcotest test_batcher_obligation_property;
      Alcotest.test_case "linebuf framings agree" `Quick test_linebuf_framings;
      Alcotest.test_case "linebuf overflow" `Quick test_linebuf_overflow;
      QCheck_alcotest.to_alcotest test_linebuf_chunking_property;
      Alcotest.test_case "reactor arbitrary framing" `Quick test_reactor_framing;
      Alcotest.test_case "reactor per-connection reply order" `Quick test_reactor_reply_order;
      Alcotest.test_case "reactor oversized line rejected" `Quick test_reactor_oversized_line;
      Alcotest.test_case "reactor mid-request disconnect" `Quick
        test_reactor_disconnect_mid_request;
      Alcotest.test_case "batched replies bit-identical to batch-1" `Slow
        test_batched_replies_bit_identical;
      QCheck_alcotest.to_alcotest test_wide_conv_identity;
      Alcotest.test_case "replica clone answers identically" `Slow
        test_replica_clone_identity;
      Alcotest.test_case "batch deadlines on a virtual clock" `Quick
        test_batch_deadline_virtual_clock;
      Alcotest.test_case "stats atomic under concurrent batches" `Slow
        test_stats_concurrent_batches;
      Alcotest.test_case "breaker atomic under concurrent failures" `Quick
        test_breaker_concurrent_failures;
      Alcotest.test_case "stats stage accounting" `Quick test_stats_stage_accounting;
    ] )
