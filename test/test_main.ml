(* Aggregated test runner for the CacheBox reproduction. Each module owns
   the suite for one layer of the system; `dune runtest` runs them all. *)

let () =
  Alcotest.run "cachebox"
    [
      Test_prng.suite;
      Test_tensor.suite;
      Test_dpool.suite;
      Test_blas.suite;
      Test_blas_tiled.suite;
      Test_workspace.suite;
      Test_parallel.suite;
      Test_gradcheck.suite;
      Test_golden.suite;
      Test_conv.suite;
      Test_value.suite;
      Test_nn.suite;
      Test_cache.suite;
      Test_hierarchy.suite;
      Test_multicachesim.suite;
      Test_workloads.suite;
      Test_heatmap.suite;
      Test_baselines.suite;
      Test_extensions.suite;
      Test_characterize.suite;
      Test_metrics.suite;
      Test_core.suite;
      Test_quant.suite;
      Test_distill.suite;
      Test_dataset.suite;
      Test_resilience.suite;
      Test_serve.suite;
      Test_serve_batch.suite;
      Test_router.suite;
      Test_reload.suite;
      Test_stream.suite;
      Test_integration.suite;
    ]
