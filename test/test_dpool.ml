(* Persistent domain-pool semantics: order preservation, exception
   re-raising on the caller, nesting, and configuration knobs. *)

exception Boom of int

let test_order_preserved =
  QCheck.Test.make ~name:"parallel_map_array preserves order" ~count:60
    QCheck.(pair (int_range 0 200) (int_range 1 8))
    (fun (n, domains) ->
      let a = Array.init n (fun i -> i) in
      let r = Dpool.parallel_map_array ~domains (fun x -> (x * 13) - 5) a in
      r = Array.map (fun x -> (x * 13) - 5) a)

let test_exception_reraised () =
  (* An exception in a worker lane must surface on the caller as the original
     exception, not a Domain.join wreck, and must not leave unset slices
     visible. *)
  let a = Array.init 64 (fun i -> i) in
  let f x = if x = 37 then raise (Boom x) else x * 2 in
  List.iter
    (fun domains ->
      match Dpool.parallel_map_array ~domains f a with
      | _ -> Alcotest.failf "expected Boom to escape at %d domains" domains
      | exception Boom 37 -> ())
    [ 1; 2; 3; 8 ]

let test_exception_on_caller_lane () =
  (* Lane 0 runs on the calling domain; its exception takes the same path. *)
  let a = Array.init 16 (fun i -> i) in
  match Dpool.parallel_map_array ~domains:4 (fun x -> if x = 0 then raise (Boom 0) else x) a with
  | _ -> Alcotest.fail "expected Boom from lane 0"
  | exception Boom 0 -> ()

let test_pool_survives_exception () =
  (* A failed region must leave the pool reusable. *)
  (try ignore (Dpool.parallel_map_array ~domains:4 (fun _ -> failwith "boom") [| 1; 2; 3; 4 |])
   with Failure _ -> ());
  let r = Dpool.parallel_map_array ~domains:4 (fun x -> x + 1) [| 1; 2; 3; 4 |] in
  Alcotest.(check (array int)) "pool still works" [| 2; 3; 4; 5 |] r

let test_parallel_for_exception () =
  match Dpool.parallel_for ~domains:3 10 (fun lo _hi -> if lo = 0 then raise (Boom lo)) with
  | () -> Alcotest.fail "expected Boom from parallel_for"
  | exception Boom 0 -> ()

let test_parallel_for_covers_range () =
  List.iter
    (fun (n, domains) ->
      let seen = Array.make n 0 in
      Dpool.parallel_for ~domains n (fun lo hi ->
          for i = lo to hi do
            seen.(i) <- seen.(i) + 1
          done);
      Alcotest.(check bool)
        (Printf.sprintf "each index once (n=%d d=%d)" n domains)
        true
        (Array.for_all (( = ) 1) seen))
    [ (1, 1); (1, 8); (7, 3); (64, 8); (100, 7) ]

let test_nested_regions () =
  (* A region entered from inside a worker runs serially instead of
     deadlocking on the pool. *)
  let outer = Array.init 6 (fun i -> i) in
  let r =
    Dpool.parallel_map_array ~domains:3
      (fun x ->
        let inner = Array.init 5 (fun j -> (x * 10) + j) in
        Array.fold_left ( + ) 0 (Dpool.parallel_map_array ~domains:3 (fun v -> v * 2) inner))
      outer
  in
  let expect =
    Array.map
      (fun x -> Array.fold_left (fun acc j -> acc + (2 * ((x * 10) + j))) 0 [| 0; 1; 2; 3; 4 |])
      outer
  in
  Alcotest.(check (array int)) "nested map" expect r

let test_with_domains_restores () =
  let before = Dpool.domains () in
  let inside = Dpool.with_domains 5 (fun () -> Dpool.domains ()) in
  Alcotest.(check int) "override visible" 5 inside;
  Alcotest.(check int) "restored" before (Dpool.domains ());
  (try Dpool.with_domains 6 (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "restored after exception" before (Dpool.domains ())

let test_set_domains_validates () =
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Dpool.set_domains: need at least one domain") (fun () ->
      Dpool.set_domains 0)

let test_shutdown_restarts () =
  ignore (Dpool.parallel_map_array ~domains:4 (fun x -> x * 3) [| 1; 2; 3; 4; 5 |]);
  Dpool.shutdown ();
  let r = Dpool.parallel_map_array ~domains:4 (fun x -> x * 3) [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int)) "pool restarts after shutdown" [| 3; 6; 9; 12; 15 |] r

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "dpool",
    [
      qc test_order_preserved;
      Alcotest.test_case "worker exception re-raised" `Quick test_exception_reraised;
      Alcotest.test_case "caller-lane exception re-raised" `Quick test_exception_on_caller_lane;
      Alcotest.test_case "pool survives exception" `Quick test_pool_survives_exception;
      Alcotest.test_case "parallel_for exception" `Quick test_parallel_for_exception;
      Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers_range;
      Alcotest.test_case "nested regions run serially" `Quick test_nested_regions;
      Alcotest.test_case "with_domains restores" `Quick test_with_domains_restores;
      Alcotest.test_case "set_domains validates" `Quick test_set_domains_validates;
      Alcotest.test_case "shutdown then restart" `Quick test_shutdown_restarts;
    ] )
