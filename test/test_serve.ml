(* Hardened serving layer: JSON codec, validation gate, error taxonomy,
   circuit breaker, bounded queue, degradation ladder, fault-injected
   corruption properties, and a live daemon round-trip over a Unix socket. *)

let temp_dir () =
  let d = Filename.temp_file "cbox_serve" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float

let check_str json k expected =
  Alcotest.(check (option string)) k (Some expected) (str_field json k)

let check_bool json k expected =
  Alcotest.(check (option bool)) k (Some expected) (bool_field json k)

(* --- Sjson codec --- *)

let test_sjson_roundtrip () =
  let j =
    Sjson.Obj
      [
        ("s", Sjson.Str "a \"b\"\n\t\\");
        ("i", Sjson.Num 42.0);
        ("f", Sjson.Num 1.5);
        ("neg", Sjson.Num (-3.0));
        ("t", Sjson.Bool true);
        ("n", Sjson.Null);
        ("a", Sjson.Arr [ Sjson.Num 1.0; Sjson.Str "x"; Sjson.Bool false ]);
        ("o", Sjson.Obj [ ("k", Sjson.Num 7.0) ]);
      ]
  in
  (match Sjson.parse (Sjson.to_string j) with
  | Ok j' -> Alcotest.(check bool) "parse inverts to_string" true (j = j')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (* Integral numbers must print without a decimal point (protocol ints). *)
  Alcotest.(check string) "integral rendering" "{\"i\": 42}"
    (Sjson.to_string (Sjson.Obj [ ("i", Sjson.Num 42.0) ]))

let test_sjson_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\": 1} junk"; "nul"; "\"unterminated"; "{1: 2}"; "+5" ] in
  List.iter
    (fun s ->
      match Sjson.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

let test_sjson_surrogates () =
  (match Sjson.parse {|"\ud83d\ude00"|} with
  | Ok (Sjson.Str s) ->
    Alcotest.(check string) "surrogate pair recombines to 4-byte UTF-8" "\xf0\x9f\x98\x80" s;
    Alcotest.(check string) "non-BMP text reprints as raw UTF-8" "\"\xf0\x9f\x98\x80\""
      (Sjson.to_string (Sjson.Str s))
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "surrogate pair rejected: %s" e);
  List.iter
    (fun s ->
      match Sjson.parse s with
      | Ok _ -> Alcotest.failf "accepted lone/mismatched surrogate %S" s
      | Error _ -> ())
    [ {|"\ud83d"|}; {|"\ud83dx"|}; {|"\ud83dA"|}; {|"\ude00"|}; {|"\ud83d\ud83d"|} ]

let test_sjson_accessors () =
  match Sjson.parse {|{"i": 3, "f": 3.5, "s": "x", "u": "é"}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j ->
    Alcotest.(check (option int)) "to_int exact" (Some 3)
      (Option.bind (Sjson.member "i" j) Sjson.to_int);
    Alcotest.(check (option int)) "to_int rejects 3.5" None
      (Option.bind (Sjson.member "f" j) Sjson.to_int);
    Alcotest.(check (option string)) "unicode escape decodes to UTF-8"
      (Some "\xc3\xa9") (str_field j "u");
    Alcotest.(check (option string)) "absent member" None (str_field j "missing")

(* --- error taxonomy --- *)

let test_taxonomy_stable () =
  List.iter
    (fun code ->
      Alcotest.(check (option bool)) "code string roundtrips" (Some true)
        (Option.map (fun c -> c = code) (Serve_error.code_of_string (Serve_error.code_string code))))
    Serve_error.all_codes;
  let exits = List.map Serve_error.exit_code Serve_error.all_codes in
  Alcotest.(check (list int)) "exit codes are the documented table"
    [ 2; 2; 3; 4; 5; 6; 7; 8 ] exits;
  Alcotest.(check (option string)) "unknown code string" None
    (Option.map Serve_error.code_string (Serve_error.code_of_string "nope"))

let test_taxonomy_of_exn () =
  let code e = (Serve_error.of_exn e).Serve_error.code in
  Alcotest.(check bool) "Failure -> Corrupt_input" true
    (code (Failure "x") = Serve_error.Corrupt_input);
  Alcotest.(check bool) "Sys_error -> Corrupt_input" true
    (code (Sys_error "x") = Serve_error.Corrupt_input);
  Alcotest.(check bool) "Invalid_argument -> Bad_request" true
    (code (Invalid_argument "x") = Serve_error.Bad_request);
  Alcotest.(check bool) "unknown -> Internal" true (code Exit = Serve_error.Internal);
  Alcotest.(check bool) "Error passes through" true
    (code (Serve_error.Error (Serve_error.v Serve_error.Overloaded "q")) = Serve_error.Overloaded)

(* --- validation gate --- *)

let expect_code what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" what (Serve_error.code_string expected)
  | Error (e : Serve_error.t) ->
    Alcotest.(check string) what (Serve_error.code_string expected)
      (Serve_error.code_string e.Serve_error.code)

let test_validate_cache_config () =
  (match Validate.cache_config ~sets:64 ~ways:4 () with
  | Ok cfg ->
    Alcotest.(check int) "sets kept" 64 cfg.Cache.sets;
    Alcotest.(check int) "ways kept" 4 cfg.Cache.ways
  | Error e -> Alcotest.failf "valid config rejected: %s" e.Serve_error.message);
  expect_code "non-power-of-two sets" Serve_error.Invalid_config
    (Validate.cache_config ~sets:100 ~ways:4 ());
  expect_code "zero sets" Serve_error.Invalid_config (Validate.cache_config ~sets:0 ~ways:4 ());
  expect_code "oversized sets" Serve_error.Invalid_config
    (Validate.cache_config ~sets:(2 * Validate.max_sets) ~ways:4 ());
  expect_code "zero ways" Serve_error.Invalid_config (Validate.cache_config ~sets:64 ~ways:0 ());
  expect_code "oversized ways" Serve_error.Invalid_config
    (Validate.cache_config ~sets:64 ~ways:(Validate.max_ways + 1) ());
  expect_code "bad block size" Serve_error.Invalid_config
    (Validate.cache_config ~block_bytes:24 ~sets:64 ~ways:4 ())

let test_validate_hierarchy () =
  let l1 = Cache.config ~sets:64 ~ways:4 () in
  let l2 = Cache.config ~sets:256 ~ways:8 () in
  Alcotest.(check bool) "monotone hierarchy accepted" true
    (Validate.hierarchy_configs [ l1; l2 ] = Ok ());
  expect_code "shrinking hierarchy" Serve_error.Invalid_config
    (Validate.hierarchy_configs [ l2; l1 ])

let test_validate_trace () =
  Alcotest.(check bool) "good trace" true (Validate.trace [| 0; 64; 128 |] = Ok ());
  expect_code "empty trace" Serve_error.Bad_request (Validate.trace [||]);
  expect_code "negative address" Serve_error.Bad_request (Validate.trace [| 64; -1 |]);
  expect_code "address beyond 2^52" Serve_error.Bad_request
    (Validate.trace [| Trace_io.max_address + 1 |]);
  expect_code "over max_len" Serve_error.Bad_request
    (Validate.trace ~max_len:2 [| 0; 64; 128 |])

let parse_request s =
  match Sjson.parse s with
  | Ok j -> Validate.request j
  | Error e -> Alcotest.failf "test request is not JSON: %s" e

let test_validate_request () =
  (match parse_request {|{"op": "infer", "id": "r", "sets": 8, "ways": 2, "trace": [0, 64, 128], "deadline_ms": 250}|} with
  | Ok (Validate.Infer { id; sets; ways; source; deadline_s; backend }) ->
    Alcotest.(check (option string)) "id" (Some "r") id;
    Alcotest.(check int) "sets" 8 sets;
    Alcotest.(check int) "ways" 2 ways;
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 0.25) deadline_s;
    Alcotest.(check bool) "no backend" true (backend = None);
    (match source with
    | Validate.Inline arr -> Alcotest.(check int) "trace len" 3 (Array.length arr)
    | _ -> Alcotest.fail "expected inline source")
  | Ok _ -> Alcotest.fail "wrong variant"
  | Error e -> Alcotest.failf "valid request rejected: %s" e.Serve_error.message);
  Alcotest.(check bool) "health" true (parse_request {|{"op": "health"}|} = Ok Validate.Health);
  Alcotest.(check bool) "shutdown" true
    (parse_request {|{"op": "shutdown"}|} = Ok Validate.Shutdown);
  expect_code "unknown op" Serve_error.Bad_request (parse_request {|{"op": "frobnicate"}|});
  expect_code "non-object" Serve_error.Bad_request (parse_request {|[1, 2]|});
  expect_code "missing sets" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "ways": 2, "trace": [0]}|});
  expect_code "no trace source" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "sets": 8, "ways": 2}|});
  expect_code "conflicting sources" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "sets": 8, "ways": 2, "trace": [0], "benchmark": "x"}|});
  expect_code "float sets" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "sets": 8.5, "ways": 2, "trace": [0]}|});
  expect_code "zero deadline" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "sets": 8, "ways": 2, "trace": [0], "deadline_ms": 0}|});
  expect_code "huge deadline" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "sets": 8, "ways": 2, "trace": [0], "deadline_ms": 900000}|});
  (match
     parse_request {|{"op": "infer", "sets": 8, "ways": 2, "trace": [0], "backend": "int8"}|}
   with
  | Ok (Validate.Infer { backend; _ }) ->
    Alcotest.(check bool) "int8 backend" true (backend = Some Cbox_infer.Backend_int8)
  | _ -> Alcotest.fail "backend request rejected");
  expect_code "unknown backend" Serve_error.Invalid_config
    (parse_request {|{"op": "infer", "sets": 8, "ways": 2, "trace": [0], "backend": "fp16"}|});
  expect_code "non-string backend" Serve_error.Bad_request
    (parse_request {|{"op": "infer", "sets": 8, "ways": 2, "trace": [0], "backend": 8}|})

(* --- circuit breaker (fake clock) --- *)

let test_breaker_lifecycle () =
  let t = ref 100.0 in
  let b = Breaker.create ~threshold:3 ~cooldown:5.0 ~now:(fun () -> !t) () in
  Alcotest.(check string) "starts closed" "closed" (Breaker.state_name (Breaker.state b));
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check int) "success resets the streak" 0 (Breaker.consecutive_failures b);
  Breaker.record_failure b;
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check string) "third consecutive failure opens" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "open blocks the model" false (Breaker.allow b);
  t := 104.9;
  Alcotest.(check bool) "still open before cooldown" false (Breaker.allow b);
  t := 105.0;
  Alcotest.(check string) "cooldown expiry surfaces as half-open" "half_open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "half-open allows the probe" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check string) "failed probe re-opens immediately" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check int) "two opens counted" 2 (Breaker.times_opened b);
  t := 111.0;
  Alcotest.(check bool) "second probe allowed" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check string) "successful probe closes" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "closed allows again" true (Breaker.allow b)

(* --- bounded queue --- *)

let test_squeue_sheds_when_full () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Squeue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Squeue.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Squeue.try_push q 3);
  Alcotest.(check int) "length" 2 (Squeue.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Squeue.pop q);
  Alcotest.(check bool) "slot freed" true (Squeue.try_push q 4);
  Squeue.close q;
  Alcotest.(check bool) "closed rejects pushes" false (Squeue.try_push q 5);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Squeue.pop q);
  Alcotest.(check (option int)) "drains after close (2)" (Some 4) (Squeue.pop q);
  Alcotest.(check (option int)) "empty + closed ends" None (Squeue.pop q)

let test_squeue_close_wakes_popper () =
  let q : int Squeue.t = Squeue.create ~capacity:1 in
  let result = ref (Some 0) in
  let popper = Thread.create (fun () -> result := Squeue.pop q) () in
  Thread.delay 0.05;
  Squeue.close q;
  Thread.join popper;
  Alcotest.(check (option int)) "blocked pop returns None on close" None !result

(* --- serving engine --- *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_trace_len = 4 * Heatmap.accesses_per_image tiny_spec

let tiny_trace =
  lazy
    (let rng = Prng.create 31 in
     Array.init tiny_trace_len (fun i ->
         if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64))

let infer_line ?id ?deadline_ms () =
  let trace = Lazy.force tiny_trace in
  Sjson.to_string
    (Sjson.Obj
       ((match id with None -> [] | Some id -> [ ("id", Sjson.Str id) ])
       @ [
           ("op", Sjson.Str "infer");
           ("sets", Sjson.Num 4.0);
           ("ways", Sjson.Num 2.0);
           ( "trace",
             Sjson.Arr (Array.to_list (Array.map (fun a -> Sjson.Num (float_of_int a)) trace))
           );
         ]
       @
       match deadline_ms with
       | None -> []
       | Some ms -> [ ("deadline_ms", Sjson.Num (float_of_int ms)) ]))

let reply engine line =
  match Serve_engine.handle_line engine line with
  | Serve_engine.Reply j | Serve_engine.Shutdown_reply j -> j

(* Wide validity gate so an untrained generator's raw answer still counts
   as a model success; the NaN injected by [Nan_output] fails any gate. *)
let engine ?now ~model ?(fallback = Cbox_infer.Fallback_hrd) () =
  let cfg =
    {
      (Serve_engine.default_config ~fallback ()) with
      Serve_engine.grace_lo = -1e9;
      grace_hi = 1e9;
      breaker_cooldown_s = 5.0;
    }
  in
  Serve_engine.create ?now ~spec:tiny_spec ~model cfg

let test_engine_degrades_without_model () =
  let e = engine ~model:None () in
  let r = reply e (infer_line ~id:"d1" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" true;
  check_str r "source" "hrd";
  check_str r "reason" "model_unavailable";
  check_str r "id" "d1";
  (match num_field r "hit_rate" with
  | Some hr -> Alcotest.(check bool) "hit rate in [0,1]" true (hr >= 0.0 && hr <= 1.0)
  | None -> Alcotest.fail "no hit_rate in degraded reply");
  let h = reply e {|{"op": "health"}|} in
  check_str h "status" "degraded";
  check_bool h "model_loaded" false

let test_engine_no_model_no_fallback () =
  let e = engine ~model:None ~fallback:Cbox_infer.No_fallback () in
  let r = reply e (infer_line ()) in
  check_bool r "ok" false;
  check_str r "error" "model_unavailable"

let test_engine_typed_errors () =
  let e = engine ~model:None () in
  check_str (reply e "{ not json") "error" "bad_request";
  check_str (reply e {|{"op": "infer", "sets": 100, "ways": 4, "trace": [0, 64]}|}) "error"
    "invalid_config";
  check_str (reply e {|{"op": "infer", "sets": 4, "ways": 2, "benchmark": "no-such"}|}) "error"
    "bad_request";
  (* A valid trace that cannot fill one heatmap image is a typed error, not
     a crash inside the heatmap pipeline. *)
  check_str (reply e {|{"op": "infer", "sets": 4, "ways": 2, "trace": [0, 64, 128]}|}) "error"
    "bad_request";
  let s = reply e {|{"op": "stats"}|} in
  Alcotest.(check (option (float 1e-9))) "bad_request errors counted" (Some 3.0)
    (num_field s "err_bad_request")

let test_engine_deadline_expired_in_queue () =
  let t = ref 1000.0 in
  let e = engine ~now:(fun () -> !t) ~model:None () in
  let req =
    Validate.Infer
      {
        id = Some "late";
        sets = 4;
        ways = 2;
        source = Validate.Inline (Lazy.force tiny_trace);
        deadline_s = Some 1.0;
        backend = None;
      }
  in
  (* Arrived 10 s ago with a 1 s budget: dead before the worker saw it. *)
  match Serve_engine.handle_request e ~arrival:(!t -. 10.0) req with
  | Serve_engine.Reply r ->
    check_bool r "ok" false;
    check_str r "error" "deadline_exceeded";
    check_str r "id" "late"
  | Serve_engine.Shutdown_reply _ -> Alcotest.fail "unexpected shutdown"

(* Same scenario through [handle_line ?arrival] — the daemon path: the
   timestamp the daemon stamps at enqueue, not the dequeue time, drives the
   deadline, so time spent queued is on the clock. *)
let test_engine_queue_wait_counts_against_deadline () =
  let t = ref 1000.0 in
  let e = engine ~now:(fun () -> !t) ~model:None () in
  (match Serve_engine.handle_line e ~arrival:(!t -. 10.0) (infer_line ~id:"q" ~deadline_ms:1000 ()) with
  | Serve_engine.Reply r ->
    check_bool r "ok" false;
    check_str r "error" "deadline_exceeded";
    check_str r "id" "q"
  | Serve_engine.Shutdown_reply _ -> Alcotest.fail "unexpected shutdown");
  (* A fresh arrival with the same budget goes through. *)
  match Serve_engine.handle_line e ~arrival:!t (infer_line ~id:"f" ~deadline_ms:1000 ()) with
  | Serve_engine.Reply r -> check_bool r "ok" true
  | Serve_engine.Shutdown_reply _ -> Alcotest.fail "unexpected shutdown"

let with_model f =
  let model = Cbgan.create ~seed:51 tiny_model_config in
  Fun.protect ~finally:Faultinject.disarm (fun () -> f model)

let test_engine_model_happy_path () =
  with_model (fun model ->
      let e = engine ~model:(Some model) () in
      let r = reply e (infer_line ~id:"m1" ()) in
      check_bool r "ok" true;
      check_bool r "degraded" false;
      check_str r "source" "model";
      Alcotest.(check (option string)) "no reason on clean answers" None (str_field r "reason");
      let h = reply e {|{"op": "health"}|} in
      check_str h "status" "ok")

let test_engine_nan_output_degrades () =
  with_model (fun model ->
      let e = engine ~model:(Some model) () in
      Faultinject.arm Faultinject.Nan_output ~at_batch:1;
      let r = reply e (infer_line ()) in
      check_bool r "ok" true;
      check_bool r "degraded" true;
      check_str r "source" "hrd";
      (match str_field r "reason" with
      | Some reason ->
        Alcotest.(check bool) "reason names the model fault" true
          (String.length reason >= 11 && String.sub reason 0 11 = "model_fault")
      | None -> Alcotest.fail "degraded reply must carry a reason");
      (* One fault is below the threshold: the model is trusted again. *)
      let r2 = reply e (infer_line ()) in
      check_bool r2 "degraded" false;
      check_str r2 "source" "model")

let test_engine_breaker_trips_and_recovers () =
  with_model (fun model ->
      let t = ref 500.0 in
      let e = engine ~now:(fun () -> !t) ~model:(Some model) () in
      (* Three consecutive NaN outputs: every answer stays a flagged
         baseline, and the third trips the breaker. *)
      Faultinject.arm ~count:3 Faultinject.Nan_output ~at_batch:1;
      for _ = 1 to 3 do
        let r = reply e (infer_line ()) in
        check_bool r "degraded" true
      done;
      Alcotest.(check string) "breaker open after threshold" "open"
        (Breaker.state_name (Serve_engine.breaker_state e));
      (* Open: the model is skipped entirely (the injected fault is spent,
         so a model attempt would succeed — the breaker must prevent it). *)
      let r = reply e (infer_line ()) in
      check_bool r "degraded" true;
      check_str r "reason" "breaker_open";
      (* Cooldown expires: half-open probe reaches the (healthy) model and
         closes the breaker. *)
      t := 506.0;
      let r = reply e (infer_line ()) in
      check_bool r "degraded" false;
      check_str r "source" "model";
      Alcotest.(check string) "probe success closes" "closed"
        (Breaker.state_name (Serve_engine.breaker_state e));
      let s = reply e {|{"op": "stats"}|} in
      Alcotest.(check (option (float 1e-9))) "opens counted" (Some 1.0) (num_field s "breaker_opens");
      Alcotest.(check (option (float 1e-9))) "degraded counted" (Some 4.0)
        (num_field s "degraded_count"))

let test_engine_slow_model_degrades_on_deadline () =
  with_model (fun model ->
      (* Real clock: the injected stall must actually consume the budget. *)
      let e = engine ~model:(Some model) () in
      Faultinject.arm (Faultinject.Slow 0.25) ~at_batch:1;
      let r = reply e (infer_line ~deadline_ms:50 ()) in
      check_bool r "ok" true;
      check_bool r "degraded" true;
      check_str r "reason" "deadline";
      (* The stall is spent; with headroom restored the model answers. *)
      let r2 = reply e (infer_line ~deadline_ms:5000 ()) in
      check_str r2 "source" "model")

let test_engine_overload_reply () =
  let e = engine ~model:None () in
  let r = Serve_engine.overload_reply e in
  check_bool r "ok" false;
  check_str r "error" "overloaded";
  let s = reply e {|{"op": "stats"}|} in
  Alcotest.(check (option (float 1e-9))) "shed counted" (Some 1.0) (num_field s "shed")

(* --- corruption properties (fault drill) --- *)

let corrupt_codes result expected what =
  match result with
  | Ok _ -> Alcotest.failf "%s: corruption accepted" what
  | Error (e : Serve_error.t) -> e.Serve_error.code = expected

let test_corrupt_trace_property =
  (* Flipping any byte of a binary trace must surface as a typed
     [corrupt_input] — never a crash, never silently different addresses. *)
  QCheck.Test.make ~name:"corrupt trace byte -> typed corrupt_input" ~count:80
    QCheck.(int_range 0 4_000)
    (fun offset ->
      let dir = temp_dir () in
      let path = Filename.concat dir "t.bin" in
      Trace_io.write_binary path (Array.init 64 (fun i -> i * 64));
      Faultinject.corrupt_byte path ~offset;
      let ok = corrupt_codes (Validate.read_trace_file path) Serve_error.Corrupt_input "trace" in
      rm_rf dir;
      ok)

let test_truncated_trace_property =
  QCheck.Test.make ~name:"truncated trace -> typed corrupt_input" ~count:60
    QCheck.(int_range 0 4_000)
    (fun cut ->
      let dir = temp_dir () in
      let path = Filename.concat dir "t.bin" in
      Trace_io.write_binary path (Array.init 64 (fun i -> i * 64));
      let ic = open_in_bin path in
      let full = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let keep = cut mod String.length full in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 keep);
      close_out oc;
      let ok =
        corrupt_codes (Validate.read_trace_file path) Serve_error.Corrupt_input "truncation"
      in
      rm_rf dir;
      ok)

let test_corrupt_checkpoint_property =
  (* Serving must never load weights from a damaged checkpoint: any flipped
     byte is a typed [model_unavailable] at startup. *)
  let pristine =
    lazy
      (let dir = temp_dir () in
       let path = Filename.concat dir "m.ckpt" in
       Cbgan.save (Cbgan.create ~seed:52 tiny_model_config) path;
       let ic = open_in_bin path in
       let bytes = really_input_string ic (in_channel_length ic) in
       close_in ic;
       rm_rf dir;
       bytes)
  in
  QCheck.Test.make ~name:"corrupt checkpoint byte -> typed model_unavailable" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun offset ->
      let dir = temp_dir () in
      let path = Filename.concat dir "m.ckpt" in
      let oc = open_out_bin path in
      output_string oc (Lazy.force pristine);
      close_out oc;
      Faultinject.corrupt_byte path ~offset;
      let ok =
        corrupt_codes
          (Serve_engine.model_of_checkpoint ~seed:52 tiny_model_config ~path)
          Serve_error.Model_unavailable "checkpoint"
      in
      rm_rf dir;
      ok)

let test_junk_request_property =
  (* The engine is total: any byte soup gets a reply, and error replies
     carry a known taxonomy code. *)
  let e = lazy (engine ~model:None ()) in
  QCheck.Test.make ~name:"arbitrary request line -> typed reply" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
    (fun line ->
      let r = reply (Lazy.force e) line in
      match bool_field r "ok" with
      | Some true -> true
      | Some false -> (
        match str_field r "error" with
        | Some code -> Serve_error.code_of_string code <> None
        | None -> false)
      | None -> false)

(* --- daemon over a real Unix socket --- *)

let daemon_config sock =
  {
    Serve_daemon.listen = Serve_daemon.Unix_socket sock;
    queue_depth = 8;
    batcher = Batcher.default_config;
    engine =
      { (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
        Serve_engine.grace_lo = -1e9; grace_hi = 1e9 };
    stream = Stream_session.default_config;
    idle_timeout_s = None;
  }

(* Starts the daemon in a thread and blocks until its socket accepts. *)
let start_daemon ?(model = None) config =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let is_ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Serve_daemon.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            is_ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          ~spec:tiny_spec ~model config)
      ()
  in
  Mutex.lock ready_m;
  while not !is_ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  server

let connect_client sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send_req oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let read_reply ic =
  match Sjson.parse (input_line ic) with
  | Ok j -> j
  | Error e -> Alcotest.failf "daemon sent a non-JSON reply: %s" e

let close_client fd = try Unix.close fd with Unix.Unix_error _ -> ()

let test_daemon_roundtrip () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let server = start_daemon (daemon_config sock) in
  let fd, ic, oc = connect_client sock in
  let call line =
    send_req oc line;
    read_reply ic
  in
  let h = call {|{"op": "health"}|} in
  check_bool h "ok" true;
  check_str h "status" "degraded";
  check_bool h "model_loaded" false;
  let r = call (infer_line ~id:"net1" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" true;
  check_str r "source" "hrd";
  check_str r "id" "net1";
  check_str (call "{ not json") "error" "bad_request";
  let s = call {|{"op": "stats"}|} in
  (match num_field s "served" with
  | Some n -> Alcotest.(check bool) "served >= 3" true (n >= 3.0)
  | None -> Alcotest.fail "stats missing served");
  let sd = call {|{"op": "shutdown"}|} in
  check_str sd "op" "shutdown";
  (* The connection is deliberately left open across the join: shutdown
     must wake the idle reader itself (EOF), not wait for the client. *)
  Thread.join server;
  (match input_line ic with
  | exception End_of_file -> ()
  | _ -> Alcotest.fail "client expected EOF after shutdown");
  close_client fd;
  Alcotest.(check bool) "socket file removed on shutdown" false (Sys.file_exists sock);
  rm_rf dir

(* Shutdown under concurrency: while the worker is stalled inside a slow
   model inference, a shutdown and a trailing infer pile up in the queue.
   The daemon must answer the stalled request, the shutdown, and the
   orphaned request (as shed), wake the idle client with EOF, and join —
   the exact interleaving that used to deadlock [run]. *)
let test_daemon_shutdown_drains_and_wakes () =
  with_model (fun model ->
      let dir = temp_dir () in
      let sock = Filename.concat dir "s.sock" in
      let server = start_daemon ~model:(Some model) (daemon_config sock) in
      let idle_fd, idle_ic, _ = connect_client sock in
      let slow_fd, slow_ic, slow_oc = connect_client sock in
      let ctl_fd, ctl_ic, ctl_oc = connect_client sock in
      let late_fd, late_ic, late_oc = connect_client sock in
      Faultinject.arm (Faultinject.Slow 0.5) ~at_batch:1;
      send_req slow_oc (infer_line ~id:"slow" ());
      Thread.delay 0.15;
      send_req ctl_oc {|{"op": "shutdown"}|};
      Thread.delay 0.1;
      send_req late_oc (infer_line ~id:"late" ());
      let slow_r = read_reply slow_ic in
      check_bool slow_r "ok" true;
      let ctl_r = read_reply ctl_ic in
      check_str ctl_r "op" "shutdown";
      let late_r = read_reply late_ic in
      check_bool late_r "ok" false;
      check_str late_r "error" "overloaded";
      (match input_line idle_ic with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "idle client expected EOF on shutdown");
      Thread.join server;
      List.iter close_client [ idle_fd; slow_fd; ctl_fd; late_fd ];
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
      rm_rf dir)

(* A second daemon on a live socket must refuse (and leave the live daemon
   undisturbed); a stale socket file left by a crash is reclaimed. *)
let test_daemon_socket_in_use_and_stale () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let config = daemon_config sock in
  let server = start_daemon config in
  (match Serve_daemon.run ~spec:tiny_spec ~model:None config with
  | () -> Alcotest.fail "second daemon started over a live one"
  | exception Serve_error.Error e ->
    Alcotest.(check string) "live socket refused as invalid_config" "invalid_config"
      (Serve_error.code_string e.Serve_error.code));
  let fd, ic, oc = connect_client sock in
  send_req oc {|{"op": "health"}|};
  check_bool (read_reply ic) "ok" true;
  send_req oc {|{"op": "shutdown"}|};
  ignore (read_reply ic);
  Thread.join server;
  close_client fd;
  (* Stale file: bound but nobody listening behind it (simulated crash). *)
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX sock);
  Unix.close stale;
  Alcotest.(check bool) "stale socket file left behind" true (Sys.file_exists sock);
  let server2 = start_daemon config in
  let fd2, ic2, oc2 = connect_client sock in
  send_req oc2 {|{"op": "health"}|};
  check_bool (read_reply ic2) "ok" true;
  send_req oc2 {|{"op": "shutdown"}|};
  ignore (read_reply ic2);
  Thread.join server2;
  close_client fd2;
  rm_rf dir

let test_daemon_unresolvable_host () =
  let config =
    Serve_daemon.default_config (Serve_daemon.Tcp ("no-such-host.invalid", 0))
  in
  match Serve_daemon.run ~spec:tiny_spec ~model:None config with
  | () -> Alcotest.fail "daemon started on an unresolvable host"
  | exception Serve_error.Error e ->
    Alcotest.(check string) "unresolvable host is invalid_config" "invalid_config"
      (Serve_error.code_string e.Serve_error.code)

let suite =
  ( "serve",
    [
      Alcotest.test_case "sjson roundtrip" `Quick test_sjson_roundtrip;
      Alcotest.test_case "sjson rejects garbage" `Quick test_sjson_rejects_garbage;
      Alcotest.test_case "sjson surrogate pairs" `Quick test_sjson_surrogates;
      Alcotest.test_case "sjson accessors" `Quick test_sjson_accessors;
      Alcotest.test_case "taxonomy codes stable" `Quick test_taxonomy_stable;
      Alcotest.test_case "taxonomy of_exn total" `Quick test_taxonomy_of_exn;
      Alcotest.test_case "validate cache config" `Quick test_validate_cache_config;
      Alcotest.test_case "validate hierarchy" `Quick test_validate_hierarchy;
      Alcotest.test_case "validate trace" `Quick test_validate_trace;
      Alcotest.test_case "validate wire requests" `Quick test_validate_request;
      Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
      Alcotest.test_case "squeue sheds when full" `Quick test_squeue_sheds_when_full;
      Alcotest.test_case "squeue close wakes popper" `Quick test_squeue_close_wakes_popper;
      Alcotest.test_case "engine degrades without model" `Quick test_engine_degrades_without_model;
      Alcotest.test_case "engine no model no fallback" `Quick test_engine_no_model_no_fallback;
      Alcotest.test_case "engine typed errors" `Quick test_engine_typed_errors;
      Alcotest.test_case "engine deadline expired in queue" `Quick test_engine_deadline_expired_in_queue;
      Alcotest.test_case "engine queue wait counts against deadline" `Quick
        test_engine_queue_wait_counts_against_deadline;
      Alcotest.test_case "engine model happy path" `Slow test_engine_model_happy_path;
      Alcotest.test_case "engine nan output degrades" `Slow test_engine_nan_output_degrades;
      Alcotest.test_case "engine breaker trips and recovers" `Slow test_engine_breaker_trips_and_recovers;
      Alcotest.test_case "engine slow model deadline" `Slow test_engine_slow_model_degrades_on_deadline;
      Alcotest.test_case "engine overload reply" `Quick test_engine_overload_reply;
      QCheck_alcotest.to_alcotest test_corrupt_trace_property;
      QCheck_alcotest.to_alcotest test_truncated_trace_property;
      QCheck_alcotest.to_alcotest test_corrupt_checkpoint_property;
      QCheck_alcotest.to_alcotest test_junk_request_property;
      Alcotest.test_case "daemon unix-socket roundtrip" `Quick test_daemon_roundtrip;
      Alcotest.test_case "daemon shutdown drains queue and wakes idle clients" `Slow
        test_daemon_shutdown_drains_and_wakes;
      Alcotest.test_case "daemon refuses live socket, reclaims stale" `Quick
        test_daemon_socket_in_use_and_stale;
      Alcotest.test_case "daemon rejects unresolvable host" `Quick
        test_daemon_unresolvable_host;
    ] )
