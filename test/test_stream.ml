(* Live trace streaming: Accum checkpoint round-trips, the session manager's
   credit/quota/poison/resume invariants, bit-identity of streamed windows
   against the offline pipeline, fault containment across sessions, the
   idle-connection reaper, and the Linebuf/Squeue framing layers the stream
   path rides on. *)

let temp_dir () =
  let d = Filename.temp_file "cbox_stream" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float
let int_field json k = Option.bind (Sjson.member k json) Sjson.to_int

let geti json k =
  match int_field json k with
  | Some v -> v
  | None -> Alcotest.failf "missing integer field %S in %s" k (Sjson.to_string json)

let check_str json k expected =
  Alcotest.(check (option string)) k (Some expected) (str_field json k)

let check_bool json k expected =
  Alcotest.(check (option bool)) k (Some expected) (bool_field json k)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()
let apw = Heatmap.accesses_per_image tiny_spec
let step = Heatmap.step_accesses tiny_spec

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let with_model f =
  let model = Cbgan.create ~seed:51 tiny_model_config in
  Fun.protect ~finally:Faultinject.disarm (fun () -> f model)

let mk_trace ?(seed = 37) len =
  let rng = Prng.create seed in
  Array.init len (fun i ->
      if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64)

let tiny_trace = lazy (mk_trace (4 * apw))
let tiny_windows = Heatmap.image_count tiny_spec (4 * apw)

(* Wide validity gate so an untrained generator's raw answer counts as a
   model success; the NaN injected by [Nan_output] fails any gate. *)
let engine ?now ~model () =
  let cfg =
    {
      (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
      Serve_engine.grace_lo = -1e9;
      grace_hi = 1e9;
      breaker_cooldown_s = 5.0;
    }
  in
  Serve_engine.create ?now ~spec:tiny_spec ~model cfg

(* --- Accum checkpoint container --- *)

let tensor_bits t = List.map Int64.bits_of_float (Array.to_list (Tensor.to_array t))
let mask_of addr = if addr mod 3 = 0 then 3 else 1

let feed_accum acc trace lo hi =
  for i = lo to hi - 1 do
    Heatmap.Accum.add acc ~addr:trace.(i) ~mask:(mask_of trace.(i))
  done

let test_accum_snapshot_roundtrip_property =
  QCheck.Test.make ~name:"accum: snapshot/restore resumes bit-identically" ~count:40
    QCheck.(triple (int_range 0 600) (int_range 0 100_000) (int_range 0 1000))
    (fun (extra, cut_raw, seed) ->
      let len = apw + extra in
      let cut = cut_raw mod (len + 1) in
      let trace = mk_trace ~seed len in
      let straight = Heatmap.Accum.create ~planes:2 tiny_spec in
      feed_accum straight trace 0 len;
      let pre = Heatmap.Accum.create ~planes:2 tiny_spec in
      feed_accum pre trace 0 cut;
      let at_cut = Heatmap.Accum.completed pre in
      let resumed = Heatmap.Accum.create ~planes:2 tiny_spec in
      (match Heatmap.Accum.restore resumed (Heatmap.Accum.snapshot pre) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "restore of a fresh snapshot failed: %s" m);
      feed_accum resumed trace cut len;
      Alcotest.(check int) "fed" len (Heatmap.Accum.fed resumed);
      Alcotest.(check int) "completed" (Heatmap.Accum.completed straight)
        (Heatmap.Accum.completed resumed);
      (* The restored accumulator holds only post-cut images; they must be
         bit-identical to the uninterrupted run's tail, plane by plane. *)
      List.iter
        (fun plane ->
          let all = Heatmap.Accum.images straight ~plane in
          let tail = List.filteri (fun i _ -> i >= at_cut) all in
          let got = Heatmap.Accum.images resumed ~plane in
          Alcotest.(check (list (list int64)))
            (Printf.sprintf "plane %d images" plane)
            (List.map tensor_bits tail) (List.map tensor_bits got))
        [ 0; 1 ];
      (* The streaming de-overlap counters agree with the pixel-pass sum. *)
      Alcotest.(check (float 0.0)) "deoverlapped mass"
        (Heatmap.deoverlapped_sum tiny_spec (Heatmap.Accum.images straight ~plane:0))
        (Heatmap.Accum.deoverlapped_mass straight ~plane:0);
      true)

let test_accum_snapshot_corruption_property =
  QCheck.Test.make ~name:"accum: corrupt snapshot byte -> Error, state unchanged" ~count:40
    QCheck.(pair (int_range 0 100_000) (int_range 0 255))
    (fun (pos_raw, delta) ->
      let len = (2 * apw) + 31 in
      let trace = mk_trace ~seed:91 len in
      let pre = Heatmap.Accum.create ~planes:2 tiny_spec in
      feed_accum pre trace 0 (apw + 13);
      let snap = Heatmap.Accum.snapshot pre in
      let pos = pos_raw mod String.length snap in
      let flipped = Bytes.of_string snap in
      Bytes.set flipped pos
        (Char.chr (Char.code (Bytes.get flipped pos) lxor (1 + (delta mod 255))));
      let target = Heatmap.Accum.create ~planes:2 tiny_spec in
      (match Heatmap.Accum.restore target (Bytes.to_string flipped) with
      | Ok () -> Alcotest.failf "corrupt snapshot (byte %d) accepted" pos
      | Error _ -> ());
      (* A rejected restore leaves the target untouched: feeding it from
         scratch still matches an uninterrupted run bit for bit. *)
      let straight = Heatmap.Accum.create ~planes:2 tiny_spec in
      feed_accum straight trace 0 len;
      feed_accum target trace 0 len;
      Alcotest.(check (list (list int64))) "untouched target accumulates cleanly"
        (List.map tensor_bits (Heatmap.Accum.images straight ~plane:0))
        (List.map tensor_bits (Heatmap.Accum.images target ~plane:0));
      true)

let test_accum_snapshot_mismatch () =
  let acc = Heatmap.Accum.create ~planes:2 tiny_spec in
  feed_accum acc (Lazy.force tiny_trace) 0 (apw + 5);
  let snap = Heatmap.Accum.snapshot acc in
  let expect_error what target blob =
    match Heatmap.Accum.restore target blob with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  expect_error "truncated snapshot"
    (Heatmap.Accum.create ~planes:2 tiny_spec)
    (String.sub snap 0 (String.length snap - 3));
  expect_error "spec-mismatched snapshot"
    (Heatmap.Accum.create ~planes:2 (Heatmap.spec ~height:8 ~width:16 ~window:8 ()))
    snap;
  expect_error "plane-mismatched snapshot" (Heatmap.Accum.create ~planes:1 tiny_spec) snap;
  expect_error "bad magic" (Heatmap.Accum.create ~planes:2 tiny_spec) ("XXXX" ^ snap)

(* --- session manager (driven directly, no daemon) --- *)

(* Drive one request through the manager with capture closures: [drive]
   returns the submitted window items without executing them (for quota
   assertions), [call] additionally flushes them through the engine —
   batched, exactly like the daemon's batcher — and returns the reply. *)
let drive ?(conn = 1) mgr eng req =
  let subs = ref [] in
  let reply = ref None in
  Stream_session.handle mgr ~conn ~arrival:(Serve_engine.now eng)
    ~submit:(fun item cb -> subs := (item, cb) :: !subs)
    ~resolve:(fun j -> reply := Some j)
    ~exempt:(fun () -> ())
    req;
  (reply, List.rev !subs)

let flush_subs eng subs =
  if subs <> [] then begin
    let replies = Serve_engine.infer_batch eng (List.map fst subs) in
    List.iter2 (fun (_, cb) j -> cb j) subs replies
  end

let call ?conn mgr eng req =
  let reply, subs = drive ?conn mgr eng req in
  flush_subs eng subs;
  match !reply with
  | Some j -> j
  | None -> Alcotest.fail "request produced no reply"

let open_req ?id ?(sets = 4) ?(ways = 2) () = Validate.Stream_open { id; sets; ways }

let feed_req ?id ?seq ?ack ~token addrs =
  Validate.Stream_feed { id; session = token; seq; ack; payload = Validate.Addrs addrs }

let corrupt_req ~token =
  Validate.Stream_feed
    { id = None; session = token; seq = None; ack = None; payload = Validate.Corrupt "not an array" }

let resume_req ?last ~token () = Validate.Stream_resume { id = None; session = token; last_window = last }
let close_req ~token = Validate.Stream_close { id = None; session = token }

let open_session mgr eng =
  let o = call mgr eng (open_req ()) in
  check_bool o "ok" true;
  (Option.get (str_field o "session"), geti o "credit")

(* One window entry, compressed for list equality: index, the exact bits of
   the prediction, and whether it was degraded. *)
let window_entries reply =
  match Sjson.member "windows" reply with
  | Some (Sjson.Arr ws) ->
    List.map
      (fun w ->
        Printf.sprintf "%d:%Lx:%b" (geti w "window")
          (Int64.bits_of_float (Option.get (num_field w "hit_rate")))
          (bool_field w "degraded" = Some true))
      ws
  | _ -> []

(* Pour a trace through a session in credit-sized chunks, acknowledging as
   results arrive; returns every window entry in arrival order. *)
let pour ?conn mgr eng ~token ~credit trace =
  let out = ref [] in
  let acked = ref (-1) in
  let pos = ref 0 and credit = ref credit and guard = ref 0 in
  while !pos < Array.length trace do
    incr guard;
    if !guard > 1000 then Alcotest.fail "pour: no progress (credit stalled?)";
    let n = min !credit (Array.length trace - !pos) in
    let r = call ?conn mgr eng (feed_req ~token ~ack:!acked (Array.sub trace !pos n)) in
    check_bool r "ok" true;
    List.iter
      (fun e ->
        out := e :: !out;
        acked := max !acked (int_of_string (List.hd (String.split_on_char ':' e))))
      (window_entries r);
    pos := geti r "consumed";
    credit := geti r "credit"
  done;
  List.rev !out

(* The offline reference: window [c] of a streamed trace covers accesses
   [c*step, c*step+apw); an Infer over exactly that slice goes through
   [of_trace] and the same engine ladder, so the streamed prediction must
   match it bit for bit. *)
let offline_entries eng trace =
  let n = Heatmap.image_count tiny_spec (Array.length trace) in
  List.init n (fun c ->
      let slice = Array.sub trace (c * step) apw in
      match
        Serve_engine.handle_request eng ~arrival:(Serve_engine.now eng)
          (Validate.Infer
             {
               id = None;
               sets = 4;
               ways = 2;
               source = Validate.Inline slice;
               deadline_s = None;
               backend = None;
             })
      with
      | Serve_engine.Reply r ->
        Printf.sprintf "%d:%Lx:%b" c
          (Int64.bits_of_float (Option.get (num_field r "hit_rate")))
          (bool_field r "degraded" = Some true)
      | Serve_engine.Shutdown_reply _ -> Alcotest.fail "unexpected shutdown")

let stream_stat mgr k =
  match Stream_session.stats_fields mgr () with
  | [ ("stream", obj) ] -> geti obj k
  | _ -> Alcotest.fail "stats_fields did not produce one \"stream\" object"

let test_open_geometry_and_credit () =
  let eng = engine ~model:None () in
  let mgr = Stream_session.create eng in
  let o = call mgr eng (open_req ~id:"o1" ()) in
  check_bool o "ok" true;
  check_str o "op" "stream_open";
  check_str o "id" "o1";
  Alcotest.(check int) "accesses_per_image" apw (geti o "accesses_per_image");
  Alcotest.(check int) "step_accesses" step (geti o "step_accesses");
  Alcotest.(check int) "consumed" 0 (geti o "consumed");
  Alcotest.(check int) "next_window" 0 (geti o "next_window");
  let retain = Stream_session.default_config.Stream_session.retain_windows in
  Alcotest.(check int) "initial credit spans the retention ring"
    (apw + ((retain - 1) * step))
    (geti o "credit");
  Alcotest.(check int) "live sessions" 1 (Stream_session.live_sessions mgr);
  Alcotest.(check bool) "bytes charged" true (Stream_session.buffered_bytes mgr > 0);
  (* Bad geometry is a typed invalid_config, not a session. *)
  let bad = call mgr eng (open_req ~sets:100 ()) in
  check_bool bad "ok" false;
  check_str bad "error" "invalid_config";
  Alcotest.(check int) "no session from a rejected open" 1 (Stream_session.live_sessions mgr)

let test_streamed_windows_match_offline_hrd () =
  let eng = engine ~model:None () in
  let mgr = Stream_session.create eng in
  let trace = Lazy.force tiny_trace in
  let token, credit = open_session mgr eng in
  let got = pour mgr eng ~token ~credit trace in
  Alcotest.(check int) "window count" tiny_windows (List.length got);
  Alcotest.(check (list string)) "streamed = offline (analytical path)"
    (offline_entries eng trace) got;
  let c = call mgr eng (close_req ~token) in
  check_bool c "ok" true;
  Alcotest.(check int) "windows reported at close" tiny_windows (geti c "windows");
  Alcotest.(check int) "session released" 0 (Stream_session.live_sessions mgr)

let test_streamed_windows_match_offline_model () =
  with_model (fun model ->
      let eng = engine ~model:(Some model) () in
      let mgr = Stream_session.create eng in
      let trace = Lazy.force tiny_trace in
      let token, credit = open_session mgr eng in
      let got = pour mgr eng ~token ~credit trace in
      Alcotest.(check int) "window count" tiny_windows (List.length got);
      List.iter
        (fun e ->
          Alcotest.(check bool) (e ^ " not degraded") true
            (String.length e > 5 && String.sub e (String.length e - 5) 5 = "false"))
        got;
      Alcotest.(check (list string)) "streamed = offline (model path)"
        (offline_entries eng trace) got)

let test_credit_exhaustion_atomic_reject () =
  let eng = engine ~model:None () in
  let cfg = { Stream_session.default_config with Stream_session.retain_windows = 2 } in
  let mgr = Stream_session.create ~config:cfg eng in
  let trace = Lazy.force tiny_trace in
  let token, credit = open_session mgr eng in
  Alcotest.(check int) "initial credit" (apw + step) credit;
  (* Exhaust the grant without acknowledging anything: exactly two windows
     close and fill the retention ring, leaving zero credit. *)
  let r = call mgr eng (feed_req ~token (Array.sub trace 0 credit)) in
  check_bool r "ok" true;
  Alcotest.(check int) "two windows closed" 2 (List.length (window_entries r));
  Alcotest.(check int) "credit exhausted" 0 (geti r "credit");
  (* One more access is over budget: atomically rejected, nothing buffered,
     nothing consumed. *)
  let over = call mgr eng (feed_req ~token [| 64 |]) in
  check_bool over "ok" false;
  check_str over "error" "overloaded";
  Alcotest.(check int) "consumed unchanged by the reject" credit (geti over "consumed");
  Alcotest.(check int) "shed counted" 1 (stream_stat mgr "shed_credit");
  (* Acknowledging the retained windows restores exactly one ring's worth
     of credit. *)
  let ack = call mgr eng (feed_req ~token ~ack:1 [||]) in
  check_bool ack "ok" true;
  Alcotest.(check int) "credit restored by ack" (2 * step) (geti ack "credit");
  let r2 = call mgr eng (feed_req ~token ~ack:1 (Array.sub trace credit step)) in
  check_bool r2 "ok" true;
  Alcotest.(check int) "stream continues after ack" 1 (List.length (window_entries r2))

let test_corrupt_payload_poisons_one_session () =
  let eng = engine ~model:None () in
  let mgr = Stream_session.create eng in
  let trace = Lazy.force tiny_trace in
  let tok_a, _ = open_session mgr eng in
  let tok_b, credit_b = open_session mgr eng in
  (* A's chunk fails to parse as addresses: typed corrupt_input, sticky. *)
  let p = call mgr eng (corrupt_req ~token:tok_a) in
  check_bool p "ok" false;
  check_str p "error" "corrupt_input";
  Alcotest.(check int) "poison rolls nothing forward" 0 (geti p "consumed");
  let again = call mgr eng (feed_req ~token:tok_a (Array.sub trace 0 8)) in
  check_bool again "ok" false;
  check_str again "error" "corrupt_input";
  Alcotest.(check int) "poisoned feed consumes nothing" 0 (geti again "consumed");
  (* B is a different session on the same daemon: completely unaffected. *)
  let got_b = pour mgr eng ~token:tok_b ~credit:credit_b trace in
  Alcotest.(check (list string)) "neighbour session streams clean"
    (offline_entries eng trace) got_b;
  (* Resuming A clears the poison; the stream replays from [consumed]. *)
  let r = call mgr eng (resume_req ~token:tok_a ()) in
  check_bool r "ok" true;
  Alcotest.(check int) "resume names the replay point" 0 (geti r "consumed");
  Alcotest.(check int) "no windows in flight" 0 (geti r "pending");
  let healed = call mgr eng (feed_req ~token:tok_a (Array.sub trace 0 apw)) in
  check_bool healed "ok" true;
  Alcotest.(check int) "poison cleared, windows flow" 1
    (List.length (window_entries healed));
  Alcotest.(check int) "poison counted once, not per sticky replay" 1
    (stream_stat mgr "poisoned")

let test_bad_address_rolls_back_to_chunk_boundary () =
  let eng = engine ~model:None () in
  let mgr = Stream_session.create eng in
  let trace = Lazy.force tiny_trace in
  let token, _ = open_session mgr eng in
  (* First chunk stops mid-window. *)
  let k = 100 in
  let r1 = call mgr eng (feed_req ~token (Array.sub trace 0 k)) in
  check_bool r1 "ok" true;
  Alcotest.(check int) "no window yet" 0 (List.length (window_entries r1));
  (* The second chunk would close a window before the fault: the whole
     chunk must still roll back — consumed returns to the chunk boundary
     and the closed window is never dispatched. *)
  let bad = Array.sub trace k 250 in
  bad.(150) <- Trace_io.max_address + 1;
  let r2 = call mgr eng (feed_req ~token bad) in
  check_bool r2 "ok" false;
  check_str r2 "error" "corrupt_input";
  Alcotest.(check int) "rolled back to the chunk boundary" k (geti r2 "consumed");
  Alcotest.(check int) "next_window rolled back" 0 (geti r2 "next_window");
  Alcotest.(check int) "nothing left in flight" 0 (Stream_session.pending_windows mgr);
  (* Resume and replay the correct suffix: the stream must be bit-identical
     to a run that never saw the fault. *)
  let r = call mgr eng (resume_req ~token ()) in
  check_bool r "ok" true;
  let credit = geti r "credit" in
  let rest = Array.sub trace k (Array.length trace - k) in
  let got = pour mgr eng ~token ~credit rest in
  Alcotest.(check (list string)) "replayed stream = uninterrupted stream"
    (offline_entries eng trace) got

let test_conn_binding_and_resume_rebind () =
  let eng = engine ~model:None () in
  let mgr = Stream_session.create eng in
  let trace = Lazy.force tiny_trace in
  let token, _ = open_session mgr eng in
  (* conn 1 owns the session *)
  let hijack = call ~conn:2 mgr eng (feed_req ~token (Array.sub trace 0 8)) in
  check_bool hijack "ok" false;
  check_str hijack "error" "bad_request";
  let r = call ~conn:2 mgr eng (resume_req ~token ()) in
  check_bool r "ok" true;
  let ok2 = call ~conn:2 mgr eng (feed_req ~token (Array.sub trace 0 8)) in
  check_bool ok2 "ok" true;
  let stale = call ~conn:1 mgr eng (feed_req ~token (Array.sub trace 8 8)) in
  check_bool stale "ok" false;
  check_str stale "error" "bad_request"

let test_session_and_bytes_quotas () =
  let eng = engine ~model:None () in
  let cfg = { Stream_session.default_config with Stream_session.max_sessions = 1 } in
  let mgr = Stream_session.create ~config:cfg eng in
  let _tok, _ = open_session mgr eng in
  let second = call mgr eng (open_req ()) in
  check_bool second "ok" false;
  check_str second "error" "overloaded";
  Alcotest.(check int) "quota shed counted" 1 (stream_stat mgr "shed_quota");
  (* A vanishingly small byte budget rejects even the first open. *)
  let tight = { Stream_session.default_config with Stream_session.max_bytes = 64 } in
  let mgr2 = Stream_session.create ~config:tight eng in
  let o = call mgr2 eng (open_req ()) in
  check_bool o "ok" false;
  check_str o "error" "overloaded";
  Alcotest.(check int) "no bytes charged on reject" 0 (Stream_session.buffered_bytes mgr2)

let test_pending_window_quota_degrades () =
  let eng = engine ~model:None () in
  let cfg = { Stream_session.default_config with Stream_session.max_pending_windows = 1 } in
  let mgr = Stream_session.create ~config:cfg eng in
  let trace = Lazy.force tiny_trace in
  let token, _ = open_session mgr eng in
  (* One chunk closes three windows; only the first fits under the global
     pending quota — the rest must degrade immediately, not queue. *)
  let reply, subs = drive mgr eng (feed_req ~token (Array.sub trace 0 (apw + (2 * step)))) in
  Alcotest.(check int) "only one window submitted to the batcher" 1 (List.length subs);
  Alcotest.(check int) "pending gauge" 1 (Stream_session.pending_windows mgr);
  flush_subs eng subs;
  (match !reply with
  | None -> Alcotest.fail "feed never resolved"
  | Some r ->
    check_bool r "ok" true;
    let ws = window_entries r in
    Alcotest.(check int) "all three windows answered" 3 (List.length ws);
    (match Sjson.member "windows" r with
    | Some (Sjson.Arr [ _; w1; w2 ]) ->
      check_str w1 "reason" "stream_window_quota";
      check_bool w1 "degraded" true;
      check_str w2 "reason" "stream_window_quota"
    | _ -> Alcotest.fail "expected three window entries"));
  Alcotest.(check int) "pending drains" 0 (Stream_session.pending_windows mgr);
  Alcotest.(check int) "quota degradations counted" 2 (stream_stat mgr "degraded_quota")

let test_ttl_eviction () =
  let t = ref 1000.0 in
  let eng = engine ~now:(fun () -> !t) ~model:None () in
  let cfg = { Stream_session.default_config with Stream_session.session_ttl_s = 10.0 } in
  let mgr = Stream_session.create ~config:cfg eng in
  let token, _ = open_session mgr eng in
  t := 1005.0;
  Stream_session.sweep mgr;
  Alcotest.(check int) "young session survives" 1 (Stream_session.live_sessions mgr);
  t := 1011.0;
  Stream_session.sweep mgr;
  Alcotest.(check int) "idle session evicted" 0 (Stream_session.live_sessions mgr);
  Alcotest.(check int) "eviction counted" 1 (stream_stat mgr "evicted");
  Alcotest.(check int) "bytes released" 0 (Stream_session.buffered_bytes mgr);
  let r = call mgr eng (feed_req ~token [| 64 |]) in
  check_bool r "ok" false;
  check_str r "error" "bad_request"

let test_fault_containment_across_sessions () =
  with_model (fun model ->
      let eng = engine ~model:(Some model) () in
      let mgr = Stream_session.create eng in
      let trace = Lazy.force tiny_trace in
      (* Clean reference stream. *)
      let tok_a, credit = open_session mgr eng in
      let clean = pour mgr eng ~token:tok_a ~credit trace in
      (* A NaN fault armed at B's second window: only that window degrades;
         every other window of B is bit-identical to the clean stream. *)
      let tok_b, credit_b = open_session mgr eng in
      Faultinject.arm ~count:1 Faultinject.Nan_output
        ~at_batch:(Serve_engine.requests_seen eng + 2);
      let got_b = pour mgr eng ~token:tok_b ~credit:credit_b trace in
      Faultinject.disarm ();
      Alcotest.(check int) "no windows lost" tiny_windows (List.length got_b);
      List.iteri
        (fun i (c, g) ->
          if i = 1 then
            Alcotest.(check bool) "faulted window degraded" true
              (String.length g > 4 && String.sub g (String.length g - 4) 4 = "true")
          else Alcotest.(check string) (Printf.sprintf "window %d bit-identical" i) c g)
        (List.combine clean got_b);
      (* A Slow fault stalls a batch but must not change any value. *)
      let tok_c, credit_c = open_session mgr eng in
      Faultinject.arm ~count:1 (Faultinject.Slow 0.02)
        ~at_batch:(Serve_engine.requests_seen eng + 1);
      let got_c = pour mgr eng ~token:tok_c ~credit:credit_c trace in
      Faultinject.disarm ();
      Alcotest.(check (list string)) "slow fault changes nothing" clean got_c)

let test_handle_rejects_non_stream () =
  let eng = engine ~model:None () in
  let mgr = Stream_session.create eng in
  let unknown = call mgr eng (feed_req ~token:"nope" [| 64 |]) in
  check_bool unknown "ok" false;
  check_str unknown "error" "bad_request";
  let unknown_r = call mgr eng (resume_req ~token:"nope" ()) in
  check_str unknown_r "error" "bad_request";
  let unknown_c = call mgr eng (close_req ~token:"nope") in
  check_str unknown_c "error" "bad_request";
  let misrouted = call mgr eng Validate.Health in
  check_bool misrouted "ok" false;
  check_str misrouted "error" "internal"

(* --- daemon end-to-end over a real Unix socket --- *)

let daemon_config sock =
  {
    Serve_daemon.listen = Serve_daemon.Unix_socket sock;
    queue_depth = 8;
    batcher = Batcher.default_config;
    engine =
      { (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
        Serve_engine.grace_lo = -1e9; grace_hi = 1e9 };
    stream = Stream_session.default_config;
    idle_timeout_s = None;
  }

let start_daemon ?(model = None) config =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let is_ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Serve_daemon.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            is_ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          ~spec:tiny_spec ~model config)
      ()
  in
  Mutex.lock ready_m;
  while not !is_ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  server

let connect_client sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send_req oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let read_reply ic =
  match Sjson.parse (input_line ic) with
  | Ok j -> j
  | Error e -> Alcotest.failf "daemon sent a non-JSON reply: %s" e

let close_client fd = try Unix.close fd with Unix.Unix_error _ -> ()

let wire_call ic oc line =
  send_req oc line;
  read_reply ic

let feed_line ~token ?ack addrs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf {|{"op": "stream_feed", "session": "%s"|} token);
  (match ack with
  | Some a -> Buffer.add_string buf (Printf.sprintf {|, "ack": %d|} a)
  | None -> ());
  Buffer.add_string buf {|, "addrs": [|};
  Array.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int a))
    addrs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* In-order, exactly-once window collection: a gap fails the test, a replay
   (index below the high-water mark, e.g. from a resume) is dropped. *)
let collect_windows reply next out =
  match Sjson.member "windows" reply with
  | Some (Sjson.Arr ws) ->
    List.iter
      (fun w ->
        let i = geti w "window" in
        if i >= !next then begin
          if i > !next then Alcotest.failf "window gap: expected %d, got %d" !next i;
          out :=
            Printf.sprintf "%d:%Lx" i
              (Int64.bits_of_float (Option.get (num_field w "hit_rate")))
            :: !out;
          next := i + 1
        end)
      ws
  | _ -> ()

let shutdown_daemon sock server =
  let fd, ic, oc = connect_client sock in
  ignore (wire_call ic oc {|{"op": "shutdown"}|});
  close_client fd;
  Thread.join server

let test_daemon_stream_resume_bitidentical () =
  with_model (fun model ->
      let dir = temp_dir () in
      let sock = Filename.concat dir "s.sock" in
      let server = start_daemon ~model:(Some model) (daemon_config sock) in
      let trace = Lazy.force tiny_trace in
      (* Reference client: the whole trace in one credited feed. *)
      let fd_a, ic_a, oc_a = connect_client sock in
      let o_a = wire_call ic_a oc_a {|{"op": "stream_open", "sets": 4, "ways": 2}|} in
      check_bool o_a "ok" true;
      let tok_a = Option.get (str_field o_a "session") in
      Alcotest.(check bool) "credit covers the whole tiny trace" true
        (geti o_a "credit" >= Array.length trace);
      let next_a = ref 0 and ws_a = ref [] in
      let r_a = wire_call ic_a oc_a (feed_line ~token:tok_a trace) in
      check_bool r_a "ok" true;
      collect_windows r_a next_a ws_a;
      Alcotest.(check int) "reference stream complete" tiny_windows !next_a;
      close_client fd_a;
      (* Killed client: feed part of the trace, fire one more chunk and
         drop the connection without reading the reply. *)
      let fd_b, ic_b, oc_b = connect_client sock in
      let o_b = wire_call ic_b oc_b {|{"op": "stream_open", "sets": 4, "ways": 2}|} in
      let tok_b = Option.get (str_field o_b "session") in
      let next_b = ref 0 and ws_b = ref [] in
      let r1 = wire_call ic_b oc_b (feed_line ~token:tok_b (Array.sub trace 0 (apw + step))) in
      check_bool r1 "ok" true;
      collect_windows r1 next_b ws_b;
      send_req oc_b (feed_line ~token:tok_b (Array.sub trace (apw + step) step));
      close_client fd_b;
      (* The daemon must shrug the dead connection off. *)
      let fd_h, ic_h, oc_h = connect_client sock in
      check_bool (wire_call ic_h oc_h {|{"op": "health"}|}) "ok" true;
      close_client fd_h;
      (* Re-attach, drain in-flight windows, and replay the remainder: the
         combined stream must be bit-identical to the reference client. *)
      let fd_c, ic_c, oc_c = connect_client sock in
      let rec resume_poll tries =
        if tries > 200 then Alcotest.fail "resume: pending windows never drained";
        let r =
          wire_call ic_c oc_c
            (Printf.sprintf {|{"op": "stream_resume", "session": "%s", "last_window": %d}|}
               tok_b (!next_b - 1))
        in
        check_bool r "ok" true;
        if geti r "pending" > 0 then begin
          Thread.delay 0.01;
          resume_poll (tries + 1)
        end
        else r
      in
      let r = resume_poll 0 in
      collect_windows r next_b ws_b;
      let consumed = geti r "consumed" in
      Alcotest.(check bool) "resume names a sane replay point" true
        (consumed >= apw + step && consumed <= Array.length trace);
      let rest = Array.sub trace consumed (Array.length trace - consumed) in
      if Array.length rest > 0 then begin
        let r2 = wire_call ic_c oc_c (feed_line ~token:tok_b ~ack:(!next_b - 1) rest) in
        check_bool r2 "ok" true;
        collect_windows r2 next_b ws_b
      end;
      Alcotest.(check int) "resumed stream complete" tiny_windows !next_b;
      Alcotest.(check (list string)) "windows bit-identical across kill+resume"
        (List.rev !ws_a) (List.rev !ws_b);
      let c = wire_call ic_c oc_c (Printf.sprintf {|{"op": "stream_close", "session": "%s"}|} tok_b) in
      check_bool c "ok" true;
      close_client fd_c;
      shutdown_daemon sock server;
      rm_rf dir)

let test_daemon_overflow_and_partial_line_containment () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let server = start_daemon (daemon_config sock) in
  let trace = Lazy.force tiny_trace in
  (* A streaming session on connection A... *)
  let fd_a, ic_a, oc_a = connect_client sock in
  let o = wire_call ic_a oc_a {|{"op": "stream_open", "sets": 4, "ways": 2}|} in
  let token = Option.get (str_field o "session") in
  let r1 = wire_call ic_a oc_a (feed_line ~token (Array.sub trace 0 100)) in
  check_bool r1 "ok" true;
  (* ...an oversized line on connection B (over the reactor's 1 MiB frame
     cap, no newline — it can never be re-framed)... *)
  let fd_b, ic_b, oc_b = connect_client sock in
  (try
     output_string oc_b (String.make ((1 lsl 20) + 2) 'a');
     flush oc_b
   with Sys_error _ | Unix.Unix_error _ -> ());
  (match read_reply ic_b with
  | r ->
    check_bool r "ok" false;
    check_str r "error" "bad_request"
  | exception End_of_file -> Alcotest.fail "overflow closed without the typed reply");
  (match input_line ic_b with
  | _ -> Alcotest.fail "overflowed connection not closed"
  | exception End_of_file -> ());
  close_client fd_b;
  (* ...and a half-written line on connection C, dropped mid-request. *)
  let fd_c, _, oc_c = connect_client sock in
  (try
     output_string oc_c {|{"op": "stream_feed", "session|};
     flush oc_c
   with Sys_error _ | Unix.Unix_error _ -> ());
  close_client fd_c;
  Thread.delay 0.05;
  (* Session A never noticed either neighbour. *)
  let r2 = wire_call ic_a oc_a (feed_line ~token (Array.sub trace 100 (apw - 100))) in
  check_bool r2 "ok" true;
  Alcotest.(check int) "stream unaffected by misbehaving neighbours" 1
    (match Sjson.member "windows" r2 with Some (Sjson.Arr ws) -> List.length ws | _ -> 0);
  close_client fd_a;
  shutdown_daemon sock server;
  rm_rf dir

let test_daemon_idle_reaper_spares_streams () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let config = { (daemon_config sock) with Serve_daemon.idle_timeout_s = Some 0.15 } in
  let server = start_daemon config in
  let trace = Lazy.force tiny_trace in
  (* A streaming session (exempted at open)... *)
  let fd_s, ic_s, oc_s = connect_client sock in
  let o = wire_call ic_s oc_s {|{"op": "stream_open", "sets": 4, "ways": 2}|} in
  check_bool o "ok" true;
  let token = Option.get (str_field o "session") in
  (* ...and a pack of slow-loris connections, each stuck mid-line. *)
  let lorises =
    List.init 20 (fun _ ->
        let fd, ic, oc = connect_client sock in
        (try
           output_string oc {|{"op": "hea|};
           flush oc
         with Sys_error _ | Unix.Unix_error _ -> ());
        (fd, ic))
  in
  Thread.delay 0.6;
  (* Every loris was reaped: its socket reads EOF. *)
  List.iter
    (fun (fd, _) ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      (match Unix.read fd (Bytes.create 1) 0 1 with
      | 0 -> ()
      | _ -> Alcotest.fail "slow-loris connection got data instead of EOF"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "slow-loris connection was not reaped"
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      close_client fd)
    lorises;
  (* The idle stream survived far past the timeout and still works. *)
  let r = wire_call ic_s oc_s (feed_line ~token (Array.sub trace 0 apw)) in
  check_bool r "ok" true;
  Alcotest.(check int) "stream window after idling" 1
    (match Sjson.member "windows" r with Some (Sjson.Arr ws) -> List.length ws | _ -> 0);
  (* And freed slots accept fresh clients. *)
  let fd_n, ic_n, oc_n = connect_client sock in
  check_bool (wire_call ic_n oc_n {|{"op": "health"}|}) "ok" true;
  close_client fd_n;
  close_client fd_s;
  shutdown_daemon sock server;
  rm_rf dir

(* --- Linebuf framing under streaming chunk arrival --- *)

let test_linebuf_chunk_invariance_property =
  QCheck.Test.make ~name:"linebuf: stream frames survive arbitrary chunking" ~count:150
    QCheck.(pair (int_range 1 8) (list (int_range 1 400)))
    (fun (nlines, cuts) ->
      let lines =
        List.init nlines (fun i ->
            Printf.sprintf {|{"op": "stream_feed", "session": "s%d", "seq": %d, "addrs": [%d, %d, %d]}|}
              i i (i * 64) ((i + 1) * 64) ((i * 7) mod 4096 * 64))
      in
      let payload = String.concat "\n" lines ^ "\n" in
      let len = String.length payload in
      let cuts =
        List.sort_uniq compare (List.filter (fun c -> c > 0 && c < len) (List.map (fun c -> c mod len) cuts))
      in
      let rec pieces start = function
        | [] -> [ String.sub payload start (len - start) ]
        | c :: rest -> String.sub payload start (c - start) :: pieces c rest
      in
      let lb = Reactor.Linebuf.create ~max_line:(1 lsl 16) in
      let got =
        List.concat_map
          (fun piece ->
            let ls, overflowed = Reactor.Linebuf.feed lb piece in
            if overflowed then Alcotest.fail "spurious overflow";
            ls)
          (pieces 0 cuts)
      in
      got = lines && Reactor.Linebuf.pending lb = 0)

let test_linebuf_overflow_containment () =
  let lb = Reactor.Linebuf.create ~max_line:32 in
  (* Lines completed before the oversized one are still delivered... *)
  let ls, ov = Reactor.Linebuf.feed lb ("{\"ok\": 1}\n" ^ String.make 40 'x') in
  Alcotest.(check (list string)) "earlier line delivered" [ "{\"ok\": 1}" ] ls;
  Alcotest.(check bool) "overflow detected" true ov;
  Alcotest.(check bool) "sticky" true (Reactor.Linebuf.overflowed lb);
  (* ...and nothing after the overflow ever parses as a request. *)
  let ls2, _ = Reactor.Linebuf.feed lb "\n{\"op\": \"health\"}\n" in
  Alcotest.(check (list string)) "no lines after overflow" [] ls2

(* --- Squeue under concurrent producers --- *)

let test_squeue_concurrent_shed_accounting () =
  let q : int Squeue.t = Squeue.create ~capacity:8 in
  let producers = 4 and per = 500 in
  let accepted = Array.make producers 0 in
  let popped = ref 0 in
  let consumer =
    Thread.create
      (fun () ->
        let rec go () =
          match Squeue.pop q with
          | Some _ ->
            incr popped;
            go ()
          | None -> ()
        in
        go ())
      ()
  in
  let ths =
    List.init producers (fun p ->
        Thread.create
          (fun () ->
            for i = 1 to per do
              if Squeue.try_push q p then accepted.(p) <- accepted.(p) + 1;
              if i mod 64 = 0 then Thread.yield ()
            done)
          ())
  in
  List.iter Thread.join ths;
  Squeue.close q;
  Thread.join consumer;
  let acc = Array.fold_left ( + ) 0 accepted in
  Alcotest.(check bool) "some pushes admitted" true (acc > 0);
  Alcotest.(check bool) "sheds never exceed attempts" true (acc <= producers * per);
  (* Conservation: every accepted push is popped exactly once, every shed
     push never appears — no loss, no duplication. *)
  Alcotest.(check int) "accepted = popped" acc !popped;
  Alcotest.(check int) "queue fully drained" 0 (Squeue.length q)

let suite =
  ( "stream",
    [
      QCheck_alcotest.to_alcotest test_accum_snapshot_roundtrip_property;
      QCheck_alcotest.to_alcotest test_accum_snapshot_corruption_property;
      Alcotest.test_case "accum snapshot mismatch rejected" `Quick test_accum_snapshot_mismatch;
      Alcotest.test_case "open reports geometry and credit" `Quick test_open_geometry_and_credit;
      Alcotest.test_case "streamed windows = offline (analytical)" `Quick
        test_streamed_windows_match_offline_hrd;
      Alcotest.test_case "streamed windows = offline (model)" `Slow
        test_streamed_windows_match_offline_model;
      Alcotest.test_case "credit exhaustion rejects atomically" `Quick
        test_credit_exhaustion_atomic_reject;
      Alcotest.test_case "corrupt chunk poisons only its session" `Quick
        test_corrupt_payload_poisons_one_session;
      Alcotest.test_case "bad address rolls back to chunk boundary" `Quick
        test_bad_address_rolls_back_to_chunk_boundary;
      Alcotest.test_case "sessions bind to their connection" `Quick
        test_conn_binding_and_resume_rebind;
      Alcotest.test_case "session and byte quotas shed opens" `Quick test_session_and_bytes_quotas;
      Alcotest.test_case "pending-window quota degrades, not queues" `Quick
        test_pending_window_quota_degrades;
      Alcotest.test_case "idle sessions evicted by TTL" `Quick test_ttl_eviction;
      Alcotest.test_case "injected faults stay inside one session" `Slow
        test_fault_containment_across_sessions;
      Alcotest.test_case "unknown/misrouted requests get typed errors" `Quick
        test_handle_rejects_non_stream;
      Alcotest.test_case "daemon: kill + resume is bit-identical" `Slow
        test_daemon_stream_resume_bitidentical;
      Alcotest.test_case "daemon: overflow/partial lines contained" `Quick
        test_daemon_overflow_and_partial_line_containment;
      Alcotest.test_case "daemon: idle reaper spares live streams" `Slow
        test_daemon_idle_reaper_spares_streams;
      QCheck_alcotest.to_alcotest test_linebuf_chunk_invariance_property;
      Alcotest.test_case "linebuf overflow containment" `Quick test_linebuf_overflow_containment;
      Alcotest.test_case "squeue concurrent shed accounting" `Quick
        test_squeue_concurrent_shed_accounting;
    ] )
