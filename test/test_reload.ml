(* Zero-downtime model reload: engine-level hot swap (bit-identity across
   a same-checkpoint swap, corrupt checkpoints rejected without touching
   the serving model), the reload wire verb, SIGHUP on a live daemon, and
   continuous traffic across a reload seeing identical answers. *)

let temp_dir () =
  let d = Filename.temp_file "cbox_reload" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float

let check_str json k expected =
  Alcotest.(check (option string)) k (Some expected) (str_field json k)

let check_bool json k expected =
  Alcotest.(check (option bool)) k (Some expected) (bool_field json k)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_trace_len = 4 * Heatmap.accesses_per_image tiny_spec

let tiny_trace =
  lazy
    (let rng = Prng.create 31 in
     Array.init tiny_trace_len (fun i ->
         if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64))

let infer_line ?(id = "r") () =
  let trace = Lazy.force tiny_trace in
  Sjson.to_string
    (Sjson.Obj
       [
         ("id", Sjson.Str id);
         ("op", Sjson.Str "infer");
         ("sets", Sjson.Num 4.0);
         ("ways", Sjson.Num 2.0);
         ( "trace",
           Sjson.Arr (Array.to_list (Array.map (fun a -> Sjson.Num (float_of_int a)) trace))
         );
       ])

let reply engine line =
  match Serve_engine.handle_line engine line with
  | Serve_engine.Reply j | Serve_engine.Shutdown_reply j -> j

(* A saved checkpoint plus an engine armed for hot swap from it. *)
let with_reloadable_engine f =
  let dir = temp_dir () in
  let ckpt = Filename.concat dir "m.ckpt" in
  Cbgan.save (Cbgan.create ~seed:52 tiny_model_config) ckpt;
  let model =
    match Serve_engine.model_of_checkpoint ~seed:52 tiny_model_config ~path:ckpt with
    | Ok m -> Some m
    | Error e -> Alcotest.failf "fixture checkpoint unloadable: %s" e.Serve_error.message
  in
  let cfg =
    { (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
      Serve_engine.grace_lo = -1e9; grace_hi = 1e9 }
  in
  let reload =
    {
      Serve_engine.reload_seed = 52;
      reload_model_cfg = tiny_model_config;
      reload_default_path = Some ckpt;
      reload_student_path = None;
    }
  in
  let engine = Serve_engine.create ~reload ~spec:tiny_spec ~model cfg in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f ~dir ~ckpt engine)

let hit_rate json =
  match num_field json "hit_rate" with
  | Some hr -> hr
  | None -> Alcotest.failf "no hit_rate in %s" (Sjson.to_string json)

let test_engine_reload_bit_identity () =
  with_reloadable_engine (fun ~dir:_ ~ckpt:_ engine ->
      let r1 = reply engine (infer_line ~id:"before" ()) in
      check_bool r1 "ok" true;
      check_str r1 "source" "model";
      (match Serve_engine.reload engine () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reload failed: %s" e.Serve_error.message);
      Alcotest.(check int) "generation bumped" 1 (Serve_engine.reloads engine);
      let r2 = reply engine (infer_line ~id:"after" ()) in
      check_str r2 "source" "model";
      (* Same checkpoint, same weights: the swap must be invisible down to
         the last bit of the prediction. *)
      Alcotest.(check (float 0.0)) "bit-identical across the swap" (hit_rate r1)
        (hit_rate r2))

let test_engine_reload_corrupt_rejected () =
  with_reloadable_engine (fun ~dir ~ckpt:_ engine ->
      let r1 = reply engine (infer_line ()) in
      let bad = Filename.concat dir "bad.ckpt" in
      let oc = open_out_bin bad in
      output_string oc "not a checkpoint at all";
      close_out oc;
      (match Serve_engine.reload engine ~path:bad () with
      | Ok () -> Alcotest.fail "corrupt checkpoint accepted"
      | Error e ->
        Alcotest.(check bool) "typed model_unavailable" true
          (e.Serve_error.code = Serve_error.Model_unavailable));
      Alcotest.(check int) "no generation bump" 0 (Serve_engine.reloads engine);
      (* The old model is untouched and still serving, bit-identically. *)
      let r2 = reply engine (infer_line ()) in
      check_str r2 "source" "model";
      Alcotest.(check (float 0.0)) "old model still serves" (hit_rate r1) (hit_rate r2);
      let s = reply engine {|{"op": "stats"}|} in
      Alcotest.(check (option (float 1e-9))) "reload failure counted" (Some 1.0)
        (num_field s "reload_failures");
      Alcotest.(check (option (float 1e-9))) "no reload counted" (Some 0.0)
        (num_field s "reloads"))

let test_engine_reload_wire_verb () =
  with_reloadable_engine (fun ~dir:_ ~ckpt:_ engine ->
      let r = reply engine {|{"op": "reload", "id": "rl1"}|} in
      check_bool r "ok" true;
      check_str r "op" "reload";
      check_str r "id" "rl1";
      Alcotest.(check (option (float 1e-9))) "generation in the reply" (Some 1.0)
        (num_field r "reloads");
      (* Naming a missing checkpoint is a typed error, not a crash. *)
      let r = reply engine {|{"op": "reload", "checkpoint": "/no/such/file"}|} in
      check_bool r "ok" false;
      check_str r "error" "model_unavailable")

let test_engine_reload_without_spec () =
  let cfg =
    { (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
      Serve_engine.grace_lo = -1e9; grace_hi = 1e9 }
  in
  let engine = Serve_engine.create ~spec:tiny_spec ~model:None cfg in
  (match Serve_engine.reload engine () with
  | Ok () -> Alcotest.fail "reload without a spec accepted"
  | Error e ->
    Alcotest.(check bool) "typed invalid_config" true
      (e.Serve_error.code = Serve_error.Invalid_config));
  let r = reply engine {|{"op": "reload"}|} in
  check_bool r "ok" false;
  check_str r "error" "invalid_config"

(* --- live daemon --- *)

let daemon_config sock =
  {
    Serve_daemon.listen = Serve_daemon.Unix_socket sock;
    queue_depth = 32;
    batcher = Batcher.default_config;
    engine =
      { (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
        Serve_engine.grace_lo = -1e9; grace_hi = 1e9 };
    stream = Stream_session.default_config;
    idle_timeout_s = None;
  }

let start_daemon ~model ~reload sock =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let is_ready = ref false in
  let thread =
    Thread.create
      (fun () ->
        Serve_daemon.run ~reload
          ~ready:(fun () ->
            Mutex.lock ready_m;
            is_ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          ~spec:tiny_spec ~model (daemon_config sock))
      ()
  in
  Mutex.lock ready_m;
  while not !is_ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  thread

let connect_client sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let close_client fd = try Unix.close fd with Unix.Unix_error _ -> ()

let one_call sock line =
  let fd, ic, oc = connect_client sock in
  Fun.protect
    ~finally:(fun () -> close_client fd)
    (fun () ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      match Sjson.parse (input_line ic) with
      | Ok j -> j
      | Error e -> Alcotest.failf "daemon sent a non-JSON reply: %s" e)

let with_reloadable_daemon f =
  let dir = temp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let ckpt = Filename.concat dir "m.ckpt" in
  Cbgan.save (Cbgan.create ~seed:52 tiny_model_config) ckpt;
  let model =
    match Serve_engine.model_of_checkpoint ~seed:52 tiny_model_config ~path:ckpt with
    | Ok m -> Some m
    | Error e -> Alcotest.failf "fixture checkpoint unloadable: %s" e.Serve_error.message
  in
  let reload =
    {
      Serve_engine.reload_seed = 52;
      reload_model_cfg = tiny_model_config;
      reload_default_path = Some ckpt;
      reload_student_path = None;
    }
  in
  let thread = start_daemon ~model ~reload sock in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      f ~sock;
      let sd = one_call sock {|{"op": "shutdown"}|} in
      check_bool sd "ok" true;
      Thread.join thread)

(* Continuous traffic across a hot swap: a client hammers inferences while
   a control connection triggers a reload of the same checkpoint. Every
   reply must be an untagged model success with the identical prediction —
   the swap shows up as (at most) latency, never as an error or a value
   change. *)
let test_daemon_reload_under_traffic () =
  with_reloadable_daemon (fun ~sock ->
      let fd, ic, oc = connect_client sock in
      Fun.protect
        ~finally:(fun () -> close_client fd)
        (fun () ->
          let ask id =
            output_string oc (infer_line ~id ());
            output_char oc '\n';
            flush oc;
            match Sjson.parse (input_line ic) with
            | Ok j -> j
            | Error e -> Alcotest.failf "bad reply mid-reload: %s" e
          in
          let baseline = hit_rate (ask "t0") in
          let reloader =
            Thread.create (fun () -> one_call sock {|{"op": "reload"}|}) ()
          in
          for i = 1 to 30 do
            let r = ask (Printf.sprintf "t%d" i) in
            check_bool r "ok" true;
            check_str r "id" (Printf.sprintf "t%d" i);
            check_str r "source" "model";
            Alcotest.(check (float 0.0))
              "prediction identical before/during/after the swap" baseline
              (hit_rate r)
          done;
          Thread.join reloader;
          let s = one_call sock {|{"op": "stats"}|} in
          Alcotest.(check (option (float 1e-9))) "exactly one reload" (Some 1.0)
            (num_field s "reloads")))

let test_daemon_sighup_reload () =
  with_reloadable_daemon (fun ~sock ->
      let r1 = one_call sock (infer_line ~id:"pre" ()) in
      check_str r1 "source" "model";
      Unix.kill (Unix.getpid ()) Sys.sighup;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait () =
        let s = one_call sock {|{"op": "stats"}|} in
        if num_field s "reloads" = Some 1.0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "SIGHUP reload never landed; stats: %s" (Sjson.to_string s)
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      wait ();
      let r2 = one_call sock (infer_line ~id:"post" ()) in
      check_str r2 "source" "model";
      Alcotest.(check (float 0.0)) "same checkpoint, same prediction" (hit_rate r1)
        (hit_rate r2))

let suite =
  ( "reload",
    [
      Alcotest.test_case "engine: same-checkpoint swap is bit-identical" `Quick
        test_engine_reload_bit_identity;
      Alcotest.test_case "engine: corrupt checkpoint rejected, old model serves"
        `Quick test_engine_reload_corrupt_rejected;
      Alcotest.test_case "engine: reload wire verb" `Quick test_engine_reload_wire_verb;
      Alcotest.test_case "engine: reload without a spec is typed" `Quick
        test_engine_reload_without_spec;
      Alcotest.test_case "daemon: hot swap under continuous traffic" `Quick
        test_daemon_reload_under_traffic;
      Alcotest.test_case "daemon: SIGHUP triggers a reload" `Quick
        test_daemon_sighup_reload;
    ] )
