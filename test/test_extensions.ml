(* Trace import/export and the victim-cache extension. *)

let tmp suffix = Filename.temp_file "cbox" suffix

let test_text_roundtrip =
  QCheck.Test.make ~name:"text trace roundtrip" ~count:30
    QCheck.(list_of_size Gen.(0 -- 200) (int_range 0 1_000_000))
    (fun addrs ->
      let trace = Array.of_list addrs in
      let path = tmp ".trace" in
      Trace_io.write_text path trace;
      let back = Trace_io.read_text path in
      Sys.remove path;
      back = trace)

let test_binary_roundtrip =
  (* Addresses span the full writable domain [0, 2^52]; anything larger is
     rejected at write time (see test_binary_address_bound). *)
  QCheck.Test.make ~name:"binary trace roundtrip" ~count:30
    QCheck.(list_of_size Gen.(0 -- 200) (int_range 0 Trace_io.max_address))
    (fun addrs ->
      let trace = Array.of_list addrs in
      let path = tmp ".btrace" in
      Trace_io.write_binary path trace;
      let back = Trace_io.read_binary path in
      Sys.remove path;
      back = trace)

let test_binary_address_bound () =
  let path = tmp ".btrace" in
  (try
     Trace_io.write_binary path [| Trace_io.max_address + 1 |];
     Alcotest.fail "expected Invalid_argument for an address beyond 2^52"
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path

let test_text_tolerates_comments () =
  let path = tmp ".trace" in
  let oc = open_out path in
  output_string oc "# captured with pin\n0x40\n\n80\n0XFF\n";
  close_out oc;
  let trace = Trace_io.read_text path in
  Sys.remove path;
  Alcotest.(check (array int)) "parsed" [| 0x40; 0x80; 0xFF |] trace

let test_text_rejects_garbage () =
  let path = tmp ".trace" in
  let oc = open_out path in
  output_string oc "0x40\nnot-an-address\n";
  close_out oc;
  (try
     ignore (Trace_io.read_text path);
     Sys.remove path;
     Alcotest.fail "expected failure"
   with Failure msg ->
     Sys.remove path;
     Alcotest.(check bool) "mentions line" true
       (String.length msg > 0 && String.contains msg '2'))

let test_binary_rejects_bad_magic () =
  let path = tmp ".btrace" in
  let oc = open_out_bin path in
  output_string oc "NOTTRACE\x00\x00\x00\x00\x00\x00\x00\x00";
  close_out oc;
  (try
     ignore (Trace_io.read_binary path);
     Sys.remove path;
     Alcotest.fail "expected failure"
   with Failure _ -> Sys.remove path)

let test_read_auto () =
  let trace = [| 1; 2; 3 |] in
  let p1 = tmp ".trace" and p2 = tmp ".btrace" in
  Trace_io.write_text p1 trace;
  Trace_io.write_binary p2 trace;
  Alcotest.(check (array int)) "auto text" trace (Trace_io.read_auto p1);
  Alcotest.(check (array int)) "auto binary" trace (Trace_io.read_auto p2);
  Sys.remove p1;
  Sys.remove p2

(* --- access_evict --- *)

let test_access_evict_reports_victim () =
  (* 1-way, 2-set cache: block 0 then block 2 (same set) evicts block 0. *)
  let c = Cache.create (Cache.config ~sets:2 ~ways:1 ()) in
  let hit, ev = Cache.access_evict c 0 in
  Alcotest.(check bool) "cold miss" false hit;
  Alcotest.(check (option int)) "no eviction on cold fill" None ev;
  let hit, ev = Cache.access_evict c (2 * 64) in
  Alcotest.(check bool) "conflict miss" false hit;
  Alcotest.(check (option int)) "evicted block 0" (Some 0) ev;
  let hit, ev = Cache.access_evict c (2 * 64) in
  Alcotest.(check bool) "now hits" true hit;
  Alcotest.(check (option int)) "no eviction on hit" None ev

let test_access_evict_address_reconstruction =
  QCheck.Test.make ~name:"evicted addresses are real past accesses" ~count:40
    QCheck.(list_of_size Gen.(10 -- 150) (int_range 0 64))
    (fun bs ->
      let c = Cache.create (Cache.config ~sets:4 ~ways:2 ()) in
      let seen = Hashtbl.create 64 in
      List.for_all
        (fun b ->
          let addr = b * 64 in
          Hashtbl.replace seen addr ();
          let _, ev = Cache.access_evict c addr in
          match ev with None -> true | Some e -> Hashtbl.mem seen e)
        bs)

(* --- victim cache --- *)

let main_cfg = Cache.config ~sets:2 ~ways:1 ()

let test_victim_recovers_conflict () =
  (* Blocks 0 and 2 conflict in a 2-set 1-way cache; ping-ponging between
     them always misses without a victim buffer but hits with one. *)
  let v = Victim.create ~main:main_cfg ~victim_entries:4 in
  ignore (Victim.access v 0);
  ignore (Victim.access v (2 * 64));
  (match Victim.access v 0 with
  | `Victim_hit -> ()
  | `Main_hit -> Alcotest.fail "expected victim hit, got main hit"
  | `Miss -> Alcotest.fail "expected victim hit, got miss");
  let s = Victim.stats v in
  Alcotest.(check int) "one victim hit" 1 s.Victim.victim_hits

let test_victim_improves_hit_rate () =
  let ping_pong = Array.init 400 (fun i -> if i mod 2 = 0 then 0 else 2 * 64) in
  let plain = Cache.create main_cfg in
  Array.iter (fun a -> ignore (Cache.access plain a)) ping_pong;
  let plain_rate = Cache.hit_rate (Cache.stats plain) in
  let v = Victim.create ~main:main_cfg ~victim_entries:4 in
  Array.iter (fun a -> ignore (Victim.access v a)) ping_pong;
  let v_rate = Victim.hit_rate (Victim.stats v) in
  Alcotest.(check bool) "victim buffer rescues conflicts" true (v_rate > plain_rate +. 0.5)

let test_victim_never_hurts =
  QCheck.Test.make ~name:"victim hit rate >= plain hit rate" ~count:40
    QCheck.(list_of_size Gen.(20 -- 300) (int_range 0 32))
    (fun bs ->
      let trace = Array.of_list (List.map (fun b -> b * 64) bs) in
      let plain = Cache.create main_cfg in
      Array.iter (fun a -> ignore (Cache.access plain a)) trace;
      let v = Victim.create ~main:main_cfg ~victim_entries:4 in
      Array.iter (fun a -> ignore (Victim.access v a)) trace;
      Victim.hit_rate (Victim.stats v) >= Cache.hit_rate (Cache.stats plain) -. 1e-9)

let test_victim_stats_sum () =
  let v = Victim.create ~main:main_cfg ~victim_entries:2 in
  let rng = Prng.create 3 in
  for _ = 1 to 200 do
    ignore (Victim.access v (Prng.int rng 16 * 64))
  done;
  let s = Victim.stats v in
  Alcotest.(check int) "partition" s.Victim.accesses
    (s.Victim.main_hits + s.Victim.victim_hits + s.Victim.misses)

let test_victim_reset () =
  let v = Victim.create ~main:main_cfg ~victim_entries:2 in
  ignore (Victim.access v 0);
  Victim.reset v;
  let s = Victim.stats v in
  Alcotest.(check int) "cleared" 0 s.Victim.accesses

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "extensions (trace io & victim cache)",
    [
      Alcotest.test_case "text comments/formats" `Quick test_text_tolerates_comments;
      Alcotest.test_case "text rejects garbage" `Quick test_text_rejects_garbage;
      Alcotest.test_case "binary rejects bad magic" `Quick test_binary_rejects_bad_magic;
      Alcotest.test_case "read_auto" `Quick test_read_auto;
      Alcotest.test_case "access_evict basics" `Quick test_access_evict_reports_victim;
      Alcotest.test_case "victim recovers conflicts" `Quick test_victim_recovers_conflict;
      Alcotest.test_case "victim improves ping-pong" `Quick test_victim_improves_hit_rate;
      Alcotest.test_case "victim stats partition" `Quick test_victim_stats_sum;
      Alcotest.test_case "victim reset" `Quick test_victim_reset;
      qc test_text_roundtrip;
      qc test_binary_roundtrip;
      Alcotest.test_case "binary address bound" `Quick test_binary_address_bound;
      qc test_access_evict_address_reconstruction;
      qc test_victim_never_hurts;
    ] )

(* --- inclusion policies --- *)

let incl_l1 = Cache.config ~sets:2 ~ways:1 ()
let incl_l2 = Cache.config ~sets:4 ~ways:2 ()

let random_blocks seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Prng.int rng 24 * 64)

let test_inclusive_invariant =
  QCheck.Test.make ~name:"inclusive: L1 contents are always in L2" ~count:30
    QCheck.small_int (fun seed ->
      let t = Inclusion.create Inclusion.Inclusive ~l1:incl_l1 ~l2:incl_l2 in
      Inclusion.holds_invariant t (random_blocks seed 200))

let test_exclusive_invariant =
  QCheck.Test.make ~name:"exclusive: L1 and L2 are disjoint" ~count:30
    QCheck.small_int (fun seed ->
      let t = Inclusion.create Inclusion.Exclusive ~l1:incl_l1 ~l2:incl_l2 in
      Inclusion.holds_invariant t (random_blocks (seed + 1000) 200))

let test_inclusion_stats_partition =
  QCheck.Test.make ~name:"inclusion stats partition accesses" ~count:20
    QCheck.small_int (fun seed ->
      List.for_all
        (fun policy ->
          let t = Inclusion.create policy ~l1:incl_l1 ~l2:incl_l2 in
          Array.iter (fun a -> ignore (Inclusion.access t a)) (random_blocks seed 150);
          let s = Inclusion.stats t in
          s.Inclusion.accesses = s.Inclusion.l1_hits + s.Inclusion.l2_hits + s.Inclusion.misses)
        [ Inclusion.Inclusive; Inclusion.Exclusive; Inclusion.Nine ])

let test_exclusive_effective_capacity () =
  (* Exclusion gives L1+L2 worth of distinct blocks; an inclusive pair only
     holds L2's capacity. With a fully-associative L2 of 8 entries and a
     2-entry L1, a cyclic sweep over 10 blocks fits exactly under exclusion
     (only cold misses) but thrashes LRU under inclusion. *)
  let l2_fa = Cache.config ~sets:1 ~ways:8 () in
  let blocks = Array.init 10 (fun i -> i * 64) in
  let run policy =
    let t = Inclusion.create policy ~l1:incl_l1 ~l2:l2_fa in
    for _ = 1 to 40 do
      Array.iter (fun a -> ignore (Inclusion.access t a)) blocks
    done;
    let s = Inclusion.stats t in
    float_of_int s.Inclusion.misses /. float_of_int s.Inclusion.accesses
  in
  let excl = run Inclusion.Exclusive and incl = run Inclusion.Inclusive in
  Alcotest.(check bool) "exclusion: cold misses only" true (excl < 0.05);
  Alcotest.(check bool) "inclusion thrashes" true (incl > 0.5)

let test_l2_hit_moves_block_up () =
  let t = Inclusion.create Inclusion.Exclusive ~l1:incl_l1 ~l2:incl_l2 in
  ignore (Inclusion.access t 0);        (* miss: installed in L1 only *)
  ignore (Inclusion.access t (2 * 64)); (* conflicts in L1; 0 spills to L2 *)
  (match Inclusion.access t 0 with
  | `L2_hit -> ()
  | `L1_hit -> Alcotest.fail "expected L2 hit, got L1"
  | `Miss -> Alcotest.fail "expected L2 hit, got miss");
  (* The block moved up: it is in L1 now and not in L2. *)
  match Inclusion.access t 0 with
  | `L1_hit -> ()
  | _ -> Alcotest.fail "block did not move up"

let test_inclusion_reset () =
  let t = Inclusion.create Inclusion.Nine ~l1:incl_l1 ~l2:incl_l2 in
  ignore (Inclusion.access t 0);
  Inclusion.reset t;
  Alcotest.(check int) "cleared" 0 (Inclusion.stats t).Inclusion.accesses

let test_cache_invalidate () =
  let c = Cache.create incl_l1 in
  ignore (Cache.access c 0);
  Alcotest.(check bool) "present before" true (Cache.probe c 0);
  Alcotest.(check bool) "invalidate reports presence" true (Cache.invalidate c 0);
  Alcotest.(check bool) "gone after" false (Cache.probe c 0);
  Alcotest.(check bool) "second invalidate is a no-op" false (Cache.invalidate c 0)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "cache invalidate" `Quick test_cache_invalidate;
        Alcotest.test_case "exclusive capacity advantage" `Quick test_exclusive_effective_capacity;
        Alcotest.test_case "L2 hit moves block up" `Quick test_l2_hit_moves_block_up;
        Alcotest.test_case "inclusion reset" `Quick test_inclusion_reset;
        qc test_inclusive_invariant;
        qc test_exclusive_invariant;
        qc test_inclusion_stats_partition;
      ] )
