(* The tiled/packed GEMM against the naive reference: randomized shapes,
   every transpose combination, alpha/beta corner values, and bit-identity
   across domain counts.

   Shapes are deliberately ragged (primes, 1-wide edges) and the small-GEMM
   cutoff is forced to 0 so every case exercises the packed panels and the
   partial-tile mask paths of the microkernel, not the serial fallback. *)

let with_forced_tiled f =
  let k0 = Blas.kernel () in
  Blas.set_kernel Blas.Tiled;
  Blas.set_small_cutoff 0;
  Fun.protect
    ~finally:(fun () ->
      Blas.set_small_cutoff 16_384;
      Blas.set_kernel k0)
    f

(* op(A)*op(B) with plain loops, never touching Blas. *)
let naive_gemm ~trans_a ~trans_b ~alpha a b ~beta c0 ~m ~k ~n =
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        let av = if trans_a then Tensor.get2 a p i else Tensor.get2 a i p in
        let bv = if trans_b then Tensor.get2 b j p else Tensor.get2 b p j in
        acc := !acc +. (av *. bv)
      done;
      out.((i * n) + j) <- (alpha *. !acc) +. (beta *. c0.((i * n) + j))
    done
  done;
  out

let close ~tol a b =
  Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol *. (1.0 +. Float.abs y)) a b

(* One random gemm case, with the tiled path forced. *)
let check_case ~m ~k ~n ~trans_a ~trans_b ~alpha ~beta seed =
  let rng = Prng.create seed in
  let a = Tensor.randn rng (if trans_a then [| k; m |] else [| m; k |]) in
  let b = Tensor.randn rng (if trans_b then [| n; k |] else [| k; n |]) in
  let c = Tensor.randn rng [| m; n |] in
  let c0 = Tensor.to_array c in
  let expected = naive_gemm ~trans_a ~trans_b ~alpha a b ~beta c0 ~m ~k ~n in
  with_forced_tiled (fun () -> Blas.gemm ~trans_a ~trans_b ~alpha ~a ~b ~beta c);
  close ~tol:1e-4 (Tensor.to_array c) expected

let alpha_beta_gen =
  (* The corner values the autodiff layer actually uses, plus a negative. *)
  QCheck.Gen.oneofl [ (1.0, 0.0); (1.0, 1.0); (0.0, 1.0); (0.7, 0.5); (-1.5, 1.0); (2.0, -0.5) ]

let case_gen =
  QCheck.Gen.(
    tup4
      (tup3 (int_range 1 40) (int_range 1 40) (int_range 1 40))
      (tup2 bool bool) alpha_beta_gen (int_range 0 1_000_000))

let test_tiled_matches_naive =
  QCheck.Test.make ~name:"tiled gemm = naive (ragged shapes, all trans/alpha/beta)"
    ~count:200
    (QCheck.make case_gen ~print:(fun ((m, k, n), (ta, tb), (al, be), seed) ->
         Printf.sprintf "m=%d k=%d n=%d ta=%b tb=%b alpha=%g beta=%g seed=%d" m k n
           ta tb al be seed))
    (fun ((m, k, n), (trans_a, trans_b), (alpha, beta), seed) ->
      check_case ~m ~k ~n ~trans_a ~trans_b ~alpha ~beta seed)

(* Edge shapes that stress every partial-tile combination: exact multiples
   of MR/NR (4), one-off remainders, single rows/columns, k straddling the
   KC block boundary (256). *)
let test_edge_shapes () =
  List.iter
    (fun (m, k, n) ->
      List.iter
        (fun (trans_a, trans_b) ->
          Alcotest.(check bool)
            (Printf.sprintf "m=%d k=%d n=%d ta=%b tb=%b" m k n trans_a trans_b)
            true
            (check_case ~m ~k ~n ~trans_a ~trans_b ~alpha:1.0 ~beta:0.0
               (m + (13 * k) + (101 * n))))
        [ (false, false); (true, false); (false, true); (true, true) ])
    [
      (1, 1, 1);
      (4, 4, 4);
      (5, 7, 9);
      (8, 256, 8);
      (3, 257, 5);
      (65, 3, 2);
      (1, 300, 1);
      (16, 512, 12);
    ]

let test_alpha_zero_short_circuit () =
  (* alpha=0 must scale C by beta without reading A/B products. *)
  let c = Tensor.of_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let a = Tensor.of_array [| 2; 2 |] [| nan; nan; nan; nan |] in
  with_forced_tiled (fun () -> Blas.gemm ~alpha:0.0 ~a ~b:a ~beta:0.5 c);
  Alcotest.(check (array (float 1e-6)))
    "beta scaling only" [| 0.5; 1.0; 1.5; 2.0 |] (Tensor.to_array c)

(* The determinism contract: outputs are bit-identical for every lane
   count, including counts that do not divide the panel grid. *)
let test_bit_identity_across_domains () =
  let rng = Prng.create 77 in
  let m = 37 and k = 300 and n = 29 in
  let a = Tensor.randn rng [| m; k |] and b = Tensor.randn rng [| k; n |] in
  let at d =
    Dpool.with_domains d (fun () ->
        with_forced_tiled (fun () ->
            let c = Tensor.zeros [| m; n |] in
            Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 c;
            Tensor.to_array c))
  in
  let base = at 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d bit-identical to serial" d)
        true
        (Array.for_all2 Float.equal base (at d)))
    [ 2; 3; 8 ]

let test_bit_identity_transposed () =
  let rng = Prng.create 78 in
  let m = 24 and k = 129 and n = 31 in
  let a_t = Tensor.randn rng [| k; m |] and b_t = Tensor.randn rng [| n; k |] in
  let at d =
    Dpool.with_domains d (fun () ->
        with_forced_tiled (fun () ->
            let c = Tensor.zeros [| m; n |] in
            Blas.gemm ~trans_a:true ~trans_b:true ~alpha:(-1.5) ~a:a_t ~b:b_t
              ~beta:0.0 c;
            Tensor.to_array c))
  in
  let base = at 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d (transposed) bit-identical" d)
        true
        (Array.for_all2 Float.equal base (at d)))
    [ 2; 3; 8 ]

(* The two kernels must agree to float tolerance (they sum in different
   orders, so bit-identity between them is not expected or required). *)
let test_reference_vs_tiled () =
  let rng = Prng.create 79 in
  let m = 33 and k = 200 and n = 17 in
  let a = Tensor.randn rng [| m; k |] and b = Tensor.randn rng [| k; n |] in
  let under kernel =
    let k0 = Blas.kernel () in
    Blas.set_kernel kernel;
    Fun.protect
      ~finally:(fun () -> Blas.set_kernel k0)
      (fun () ->
        let c = Tensor.zeros [| m; n |] in
        Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 c;
        Tensor.to_array c)
  in
  Alcotest.(check bool)
    "reference and tiled agree" true
    (close ~tol:1e-4 (under Blas.Reference) (under Blas.Tiled))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "blas-tiled",
    [
      qc test_tiled_matches_naive;
      Alcotest.test_case "edge shapes x all transposes" `Quick test_edge_shapes;
      Alcotest.test_case "alpha=0 short circuit" `Quick test_alpha_zero_short_circuit;
      Alcotest.test_case "bit identity across domains" `Quick
        test_bit_identity_across_domains;
      Alcotest.test_case "bit identity (transposed, negative alpha)" `Quick
        test_bit_identity_transposed;
      Alcotest.test_case "reference vs tiled tolerance" `Quick test_reference_vs_tiled;
    ] )
