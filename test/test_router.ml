(* Shard router: consistent-hash ring properties (balance, minimal
   disruption, cross-process determinism), backend health tracking, the
   prediction memo, and a live router over real Unix sockets — failover
   with retries, ejection/readmission, and graceful degradation when every
   backend is gone. *)

let temp_dir () =
  let d = Filename.temp_file "cbox_router" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float

let check_str json k expected =
  Alcotest.(check (option string)) k (Some expected) (str_field json k)

let check_bool json k expected =
  Alcotest.(check (option bool)) k (Some expected) (bool_field json k)

(* --- consistent-hash ring --- *)

let keys_of_seed seed n = List.init n (fun i -> Printf.sprintf "key-%d-%d" seed i)

let count_per_node ring keys =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k ->
      let n = Hash_ring.lookup ring ~key:k in
      Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    keys;
  tbl

(* With 128 vnodes per node, 1k digests spread within a small factor of
   fair share: no node may starve below a fifth of its expectation. *)
let test_ring_balance =
  QCheck.Test.make ~name:"ring balance: 1k keys, every node gets a real share"
    ~count:20 QCheck.small_int (fun seed ->
      let nodes = [ "a"; "b"; "c"; "d" ] in
      let ring = Hash_ring.create ~vnodes:128 nodes in
      let counts = count_per_node ring (keys_of_seed seed 1000) in
      List.for_all
        (fun n ->
          Option.value ~default:0 (Hashtbl.find_opt counts n) >= 1000 / (5 * 4))
        nodes)

let test_ring_minimal_disruption_leave =
  QCheck.Test.make ~name:"ring: node leave moves only that node's keys" ~count:20
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, gone_i) ->
      let nodes = [ "n0"; "n1"; "n2"; "n3"; "n4" ] in
      let gone = List.nth nodes gone_i in
      let before = Hash_ring.create ~vnodes:64 nodes in
      let after =
        Hash_ring.create ~vnodes:64 (List.filter (( <> ) gone) nodes)
      in
      List.for_all
        (fun k ->
          let owner = Hash_ring.lookup before ~key:k in
          owner = gone || Hash_ring.lookup after ~key:k = owner)
        (keys_of_seed seed 300))

let test_ring_minimal_disruption_join =
  QCheck.Test.make ~name:"ring: node join only moves keys onto the joiner"
    ~count:20 QCheck.small_int (fun seed ->
      let before = Hash_ring.create ~vnodes:64 [ "n0"; "n1"; "n2" ] in
      let after = Hash_ring.create ~vnodes:64 [ "n0"; "n1"; "n2"; "n3" ] in
      List.for_all
        (fun k ->
          let now = Hash_ring.lookup after ~key:k in
          now = "n3" || Hash_ring.lookup before ~key:k = now)
        (keys_of_seed seed 300))

(* Placement must not depend on enumeration order (two router processes
   configured with the same backends in different order agree), and
   rebuilding the ring from scratch is deterministic. *)
let test_ring_permutation_invariant =
  QCheck.Test.make ~name:"ring: placement ignores node declaration order"
    ~count:20 QCheck.small_int (fun seed ->
      let a = Hash_ring.create [ "n0"; "n1"; "n2"; "n3" ] in
      let b = Hash_ring.create [ "n3"; "n1"; "n0"; "n2" ] in
      List.for_all
        (fun k -> Hash_ring.lookup a ~key:k = Hash_ring.lookup b ~key:k)
        (keys_of_seed seed 200))

let test_ring_successors () =
  let ring = Hash_ring.create [ "n0"; "n1"; "n2"; "n3" ] in
  List.iter
    (fun k ->
      let succ = Hash_ring.successors ring ~key:k 4 in
      Alcotest.(check int) "all nodes as replicas" 4 (List.length succ);
      Alcotest.(check int) "distinct" 4
        (List.length (List.sort_uniq String.compare succ));
      Alcotest.(check string) "first replica = primary owner"
        (Hash_ring.lookup ring ~key:k) (List.hd succ);
      Alcotest.(check int) "capped at node count" 4
        (List.length (Hash_ring.successors ring ~key:k 10)))
    (keys_of_seed 7 50)

let test_ring_rejects_bad_input () =
  let raises f = match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Hash_ring.create []);
  raises (fun () -> Hash_ring.create [ "a"; "a" ]);
  raises (fun () -> Hash_ring.create ~vnodes:0 [ "a" ])

(* --- backend health --- *)

let test_health_eject_readmit () =
  let h = Backend_health.create ~eject_after:3 () in
  Alcotest.(check bool) "fresh backend is up" true (Backend_health.up h);
  Alcotest.(check bool) "1st failure keeps it up" false (Backend_health.record_failure h);
  Alcotest.(check bool) "2nd failure keeps it up" false (Backend_health.record_failure h);
  Alcotest.(check bool) "up before threshold" true (Backend_health.up h);
  Alcotest.(check bool) "3rd failure ejects" true (Backend_health.record_failure h);
  Alcotest.(check bool) "down after threshold" false (Backend_health.up h);
  Alcotest.(check bool) "4th failure is not a second ejection" false
    (Backend_health.record_failure h);
  Alcotest.(check bool) "success re-admits" true
    (Backend_health.record_success h ~latency_s:0.010);
  Alcotest.(check bool) "up again" true (Backend_health.up h);
  Alcotest.(check int) "one ejection" 1 (Backend_health.ejections h);
  Alcotest.(check int) "one readmission" 1 (Backend_health.readmissions h);
  Alcotest.(check int) "streak reset" 0 (Backend_health.consecutive_failures h)

let test_health_ewma () =
  let h = Backend_health.create () in
  ignore (Backend_health.record_success h ~latency_s:0.100);
  Alcotest.(check (float 1e-9)) "first sample sets the EWMA" 100.0
    (Backend_health.ewma_ms h);
  ignore (Backend_health.record_success h ~latency_s:0.200);
  Alcotest.(check (float 1e-9)) "0.7 old / 0.3 new blend" 130.0
    (Backend_health.ewma_ms h);
  (* A success interleaved between failures keeps resetting the streak:
     intermittent flaps below the threshold never eject. *)
  for _ = 1 to 10 do
    ignore (Backend_health.record_failure h);
    ignore (Backend_health.record_failure h);
    ignore (Backend_health.record_success h ~latency_s:0.010)
  done;
  Alcotest.(check bool) "flapping below threshold stays up" true (Backend_health.up h);
  Alcotest.(check int) "no ejections" 0 (Backend_health.ejections h)

(* --- prediction memo --- *)

let memo_val i = Sjson.Obj [ ("v", Sjson.Num (float_of_int i)) ]

let test_memo_lru () =
  let m = Predmemo.create ~capacity:3 in
  Predmemo.add m "a" (memo_val 1);
  Predmemo.add m "b" (memo_val 2);
  Predmemo.add m "c" (memo_val 3);
  (* Touch "a" so "b" is the LRU victim when "d" arrives. *)
  Alcotest.(check bool) "hit a" true (Predmemo.find m "a" <> None);
  Predmemo.add m "d" (memo_val 4);
  Alcotest.(check bool) "b evicted" true (Predmemo.find m "b" = None);
  Alcotest.(check bool) "a survives (recently used)" true (Predmemo.find m "a" <> None);
  Alcotest.(check bool) "c survives" true (Predmemo.find m "c" <> None);
  Alcotest.(check bool) "d present" true (Predmemo.find m "d" <> None);
  Alcotest.(check int) "bounded" 3 (Predmemo.length m);
  Alcotest.(check int) "one eviction" 1 (Predmemo.evictions m);
  (* Refreshing an existing key must not evict anyone. *)
  Predmemo.add m "a" (memo_val 9);
  Alcotest.(check int) "refresh keeps size" 3 (Predmemo.length m);
  (match Predmemo.find m "a" with
  | Some (Sjson.Obj [ ("v", Sjson.Num v) ]) ->
    Alcotest.(check (float 1e-9)) "refresh updated the value" 9.0 v
  | _ -> Alcotest.fail "refreshed entry lost");
  Predmemo.clear m;
  Alcotest.(check int) "clear empties" 0 (Predmemo.length m);
  Alcotest.(check bool) "hit counters survive clear" true (Predmemo.hits m > 0)

let test_memo_disabled () =
  let m = Predmemo.create ~capacity:0 in
  Predmemo.add m "a" (memo_val 1);
  Alcotest.(check bool) "capacity 0 never stores" true (Predmemo.find m "a" = None);
  Alcotest.(check int) "empty" 0 (Predmemo.length m)

(* --- live router over real sockets --- *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_trace_len = 4 * Heatmap.accesses_per_image tiny_spec

let tiny_trace =
  lazy
    (let rng = Prng.create 31 in
     Array.init tiny_trace_len (fun i ->
         if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64))

let infer_line ~id ~sets ~ways () =
  let trace = Lazy.force tiny_trace in
  Sjson.to_string
    (Sjson.Obj
       [
         ("id", Sjson.Str id);
         ("op", Sjson.Str "infer");
         ("sets", Sjson.Num (float_of_int sets));
         ("ways", Sjson.Num (float_of_int ways));
         ( "trace",
           Sjson.Arr (Array.to_list (Array.map (fun a -> Sjson.Num (float_of_int a)) trace))
         );
       ])

let backend_config sock =
  {
    Serve_daemon.listen = Serve_daemon.Unix_socket sock;
    queue_depth = 32;
    batcher = Batcher.default_config;
    engine =
      { (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
        Serve_engine.grace_lo = -1e9; grace_hi = 1e9 };
    stream = Stream_session.default_config;
    idle_timeout_s = None;
  }

let start_backend ?(model = None) sock =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let is_ready = ref false in
  let thread =
    Thread.create
      (fun () ->
        Serve_daemon.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            is_ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          ~spec:tiny_spec ~model (backend_config sock))
      ()
  in
  Mutex.lock ready_m;
  while not !is_ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  thread

let router_config ~sock ~backends =
  {
    (Router.default_config ~listen:(Serve_daemon.Unix_socket sock) ~backends) with
    Router.workers = 2;
    max_attempts = 3;
    backoff_base_s = 0.005;
    backoff_max_s = 0.05;
    probe_interval_s = 0.15;
    probe_timeout_s = 0.25;
    eject_after = 2;
    breaker_threshold = 100;  (* keep the breaker out of the failover test *)
    memo_capacity = 32;
  }

let start_router config =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let is_ready = ref false in
  let thread =
    Thread.create
      (fun () ->
        Router.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            is_ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          config)
      ()
  in
  Mutex.lock ready_m;
  while not !is_ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  thread

let connect_client sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let close_client fd = try Unix.close fd with Unix.Unix_error _ -> ()

let one_call sock line =
  let fd, ic, oc = connect_client sock in
  Fun.protect
    ~finally:(fun () -> close_client fd)
    (fun () ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      match Sjson.parse (input_line ic) with
      | Ok j -> j
      | Error e -> Alcotest.failf "router sent a non-JSON reply: %s" e)

let shut_down_backend sock thread =
  let r = one_call sock {|{"op": "shutdown"}|} in
  check_bool r "ok" true;
  Thread.join thread

(* Poll the router's stats until [pred] holds (the prober needs a beat to
   observe a state change). *)
let wait_stats sock pred ~what =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let s = one_call sock {|{"op": "stats"}|} in
    if pred s then s
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s; last stats: %s" what (Sjson.to_string s)
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let configs =
  [ (4, 2); (8, 2); (16, 2); (32, 2); (4, 4); (8, 4); (16, 4); (32, 4);
    (4, 1); (8, 1); (16, 1); (64, 2) ]

let infer_all rsock ~tag =
  List.iteri
    (fun i (sets, ways) ->
      let id = Printf.sprintf "%s-%d" tag i in
      let r = one_call rsock (infer_line ~id ~sets ~ways ()) in
      check_bool r "ok" true;
      check_str r "id" id)
    configs

let test_router_failover_and_degradation () =
  let dir = temp_dir () in
  let b1 = Filename.concat dir "b1.sock"
  and b2 = Filename.concat dir "b2.sock"
  and rs = Filename.concat dir "r.sock" in
  let t1 = ref (start_backend b1) and t2 = ref (start_backend b2) in
  let rt =
    start_router
      (router_config ~sock:rs
         ~backends:
           [ ("b1", Serve_daemon.Unix_socket b1); ("b2", Serve_daemon.Unix_socket b2) ])
  in
  (* Healthy cluster: every shard answers, ids echo in order. *)
  let h = one_call rs {|{"op": "health"}|} in
  check_str h "status" "ok";
  check_str h "role" "router";
  infer_all rs ~tag:"warm";
  (* Kill one backend: requests keyed to it must fail over to the survivor
     (retries > 0 with 12 distinct configs), and the prober must eject it
     within its interval. *)
  shut_down_backend b1 !t1;
  infer_all rs ~tag:"failover";
  let s = wait_stats rs (fun s -> num_field s "backends_up" = Some 1.0) ~what:"ejection" in
  (match num_field s "retries" with
  | Some r -> Alcotest.(check bool) "failover retried at least once" true (r >= 1.0)
  | None -> Alcotest.fail "stats missing retries");
  (match (num_field s "served", num_field s "ok_count") with
  | Some n, Some ok ->
    (* 24 infers + health + the polls: everything answered, all ok — a
       request that failed over was still recorded exactly once. *)
    Alcotest.(check bool) "served >= 25" true (n >= 25.0);
    Alcotest.(check (float 1e-9)) "every answer ok despite the kill" n ok
  | _ -> Alcotest.fail "stats missing served/ok_count");
  (* Restart it on the same address: the next good probe re-admits. *)
  t1 := start_backend b1;
  let s = wait_stats rs (fun s -> num_field s "backends_up" = Some 2.0) ~what:"readmission" in
  (match Sjson.member "backends" s with
  | Some (Sjson.Arr bs) ->
    Alcotest.(check bool) "a readmission was counted" true
      (List.exists (fun b -> num_field b "readmissions" = Some 1.0) bs)
  | _ -> Alcotest.fail "stats missing backends");
  (* Kill everything: the router must still answer, degraded, from its own
     baseline — tagged so clients can tell. *)
  shut_down_backend b1 !t1;
  shut_down_backend b2 !t2;
  ignore (wait_stats rs (fun s -> num_field s "backends_up" = Some 0.0) ~what:"all down");
  let r = one_call rs (infer_line ~id:"dark" ~sets:64 ~ways:8 ()) in
  check_bool r "ok" true;
  check_bool r "degraded" true;
  check_str r "source" "router-hrd";
  check_str r "id" "dark";
  let s = one_call rs {|{"op": "stats"}|} in
  (match num_field s "degraded_router" with
  | Some n -> Alcotest.(check bool) "router degradation counted" true (n >= 1.0)
  | None -> Alcotest.fail "stats missing degraded_router");
  let sd = one_call rs {|{"op": "shutdown"}|} in
  check_bool sd "ok" true;
  Thread.join rt;
  Alcotest.(check bool) "router socket removed" false (Sys.file_exists rs);
  rm_rf dir

let test_router_memo_live () =
  let dir = temp_dir () in
  let b1 = Filename.concat dir "b1.sock" and rs = Filename.concat dir "r.sock" in
  let model = Some (Cbgan.create ~seed:51 tiny_model_config) in
  let t1 = start_backend ~model b1 in
  let rt =
    start_router
      (router_config ~sock:rs ~backends:[ ("b1", Serve_daemon.Unix_socket b1) ])
  in
  let line = infer_line ~id:"m0" ~sets:8 ~ways:2 () in
  let r1 = one_call rs line in
  check_bool r1 "ok" true;
  check_str r1 "source" "model";
  Alcotest.(check bool) "first answer is not memoized" true
    (bool_field r1 "memo" = None);
  let r2 = one_call rs (infer_line ~id:"m1" ~sets:8 ~ways:2 ()) in
  check_bool r2 "memo" true;
  check_str r2 "id" "m1";
  Alcotest.(check (option (float 1e-9))) "memo hit is bit-identical"
    (num_field r1 "hit_rate") (num_field r2 "hit_rate");
  let s = one_call rs {|{"op": "stats"}|} in
  Alcotest.(check (option (float 1e-9))) "one memo hit" (Some 1.0)
    (num_field s "memo_hits");
  (* A reload broadcast invalidates the memo (new model, stale answers). *)
  let rl = one_call rs {|{"op": "reload"}|} in
  check_bool rl "ok" false;  (* backend has no reload spec: rejected... *)
  let s = one_call rs {|{"op": "stats"}|} in
  Alcotest.(check (option (float 1e-9))) "memo flushed by reload broadcast"
    (Some 0.0) (num_field s "memo_entries");
  shut_down_backend b1 t1;
  let sd = one_call rs {|{"op": "shutdown"}|} in
  check_bool sd "ok" true;
  Thread.join rt;
  rm_rf dir

let suite =
  ( "router",
    [
      QCheck_alcotest.to_alcotest test_ring_balance;
      QCheck_alcotest.to_alcotest test_ring_minimal_disruption_leave;
      QCheck_alcotest.to_alcotest test_ring_minimal_disruption_join;
      QCheck_alcotest.to_alcotest test_ring_permutation_invariant;
      Alcotest.test_case "ring successors" `Quick test_ring_successors;
      Alcotest.test_case "ring input validation" `Quick test_ring_rejects_bad_input;
      Alcotest.test_case "health eject/readmit" `Quick test_health_eject_readmit;
      Alcotest.test_case "health EWMA + flapping" `Quick test_health_ewma;
      Alcotest.test_case "memo LRU" `Quick test_memo_lru;
      Alcotest.test_case "memo disabled at capacity 0" `Quick test_memo_disabled;
      Alcotest.test_case "live failover, ejection, readmission, degradation" `Quick
        test_router_failover_and_degradation;
      Alcotest.test_case "live memo + reload invalidation" `Quick test_router_memo_live;
    ] )
