(* Int8 quantized inference: the GEMM micro-path against its analytic error
   bound, quantized-checkpoint round-trips, float32-vs-int8 agreement on
   the full heatmap pipeline (single- and multi-domain), and the serving
   engine's backend registry (reply fields, per-backend counters, the
   int8 -> float32 degradation rung). *)

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float

let check_str json k expected =
  Alcotest.(check (option string)) k (Some expected) (str_field json k)

let check_bool json k expected =
  Alcotest.(check (option bool)) k (Some expected) (bool_field json k)

(* --- int8 GEMM vs float32 within the calibrated bound ---

   Per element, with per-row weight scales s_w[i] and the per-tensor
   activation scale s_a, symmetric rounding gives
     |C_float - C_int8| <= k * s_w[i] * s_a * 128
   (127 from the two cross terms, +1/4 from the product of the two
   rounding errors, rounded up). The property drives ragged shapes, both
   operand transposes and both scale modes through the packed kernel. *)

let naive_gemm ~wtrans ~btrans w b ~m ~k ~n =
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        let wv = if wtrans then Tensor.get2 w p i else Tensor.get2 w i p in
        let bv = if btrans then Tensor.get2 b j p else Tensor.get2 b p j in
        acc := !acc +. (wv *. bv)
      done;
      out.((i * n) + j) <- !acc
    done
  done;
  out

let check_int8_case ~m ~k ~n ~wtrans ~btrans ~pow2 seed =
  let rng = Prng.create seed in
  let w = Tensor.randn rng (if wtrans then [| k; m |] else [| m; k |]) in
  let b = Tensor.randn rng (if btrans then [| n; k |] else [| k; n |]) in
  let qw = Blas.Int8.quantize ~trans:wtrans ~pow2 w in
  let maxabs =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 (Tensor.to_array b)
  in
  let act_scale =
    let s = if maxabs > 0.0 then maxabs /. 127.0 else 1e-9 in
    if pow2 then Blas.Int8.pow2_up s else s
  in
  let c = Tensor.zeros [| m; n |] in
  Blas.Int8.gemm ~trans_b:btrans ~a:qw ~act_scale ~b c;
  let expected = naive_gemm ~wtrans ~btrans w b ~m ~k ~n in
  let scales = Blas.Int8.scales qw in
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let bound = 128.0 *. float_of_int k *. scales.(i) *. act_scale in
      if Float.abs (Tensor.get2 c i j -. expected.((i * n) + j)) > bound then ok := false
    done
  done;
  !ok

let test_int8_gemm_bound =
  QCheck.Test.make ~name:"int8 gemm within analytic bound (ragged, trans, pow2)"
    ~count:60
    QCheck.(
      make
        Gen.(
          tup4
            (tup3 (int_range 1 40) (int_range 1 40) (int_range 1 40))
            (tup2 bool bool) bool (int_range 0 1_000_000)))
    (fun ((m, k, n), (wtrans, btrans), pow2, seed) ->
      check_int8_case ~m ~k ~n ~wtrans ~btrans ~pow2 seed)

(* --- fixture shared with the pipeline + engine tests --- *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_trace_len = 4 * Heatmap.accesses_per_image tiny_spec

let tiny_trace =
  lazy
    (let rng = Prng.create 31 in
     Array.init tiny_trace_len (fun i ->
         if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64))

let tiny_model () = Cbgan.create ~seed:51 tiny_model_config
let tiny_cache = Cache.config ~sets:64 ~ways:8 ()

(* --- quantized checkpoint round-trip --- *)

let test_qgen_checkpoint_roundtrip () =
  let q = Qgen.of_model ~spec:tiny_spec (tiny_model ()) in
  let path = Filename.temp_file "cbox_qgen" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Qgen.save q path;
      let q' = Qgen.load path in
      Alcotest.(check int) "image size survives" (Qgen.image_size q) (Qgen.image_size q');
      Alcotest.(check bool) "conditioning flag survives" (Qgen.uses_cache_params q)
        (Qgen.uses_cache_params q');
      (* Scales and weights round-trip exactly, so the forward pass of the
         reloaded model is bit-identical, not just close. *)
      let rng = Prng.create 7 in
      let x = Tensor.randn rng [| 2; 1; 16; 16 |] in
      let cp =
        if Qgen.uses_cache_params q then
          Some (Cbgan.cache_params_tensor [ tiny_cache; tiny_cache ])
        else None
      in
      let y = Qgen.forward q ?cache_params:cp x in
      let y' = Qgen.forward q' ?cache_params:cp x in
      Alcotest.(check bool) "reloaded forward is bit-identical" true
        (Tensor.to_array y = Tensor.to_array y'))

(* --- float32 vs int8 on the heatmap pipeline, single- and multi-domain --- *)

let test_int8_pipeline_delta () =
  let model = tiny_model () in
  let q = Qgen.of_model ~spec:tiny_spec model in
  let access = Heatmap.of_trace tiny_spec (Lazy.force tiny_trace) in
  let miss_f =
    Cbox_infer.synthesize model tiny_spec ~domains:1 ~cache:tiny_cache access
  in
  let hr_f = Heatmap.hit_rate tiny_spec ~access ~miss:miss_f in
  let check_domains d =
    let miss_q = Cbox_infer.qsynthesize q tiny_spec ~domains:d ~cache:tiny_cache access in
    let hr_q = Heatmap.hit_rate tiny_spec ~access ~miss:miss_q in
    Alcotest.(check bool)
      (Printf.sprintf "domains %d: |int8 - float32| hit-rate delta bounded" d)
      true
      (Float.abs (hr_q -. hr_f) <= 0.05);
    miss_q
  in
  let m1 = check_domains 1 in
  let m4 = check_domains 4 in
  Alcotest.(check bool) "int8 synthesis bit-identical across domain counts" true
    (List.for_all2 (fun a b -> Tensor.to_array a = Tensor.to_array b) m1 m4)

(* --- serving engine: backend registry --- *)

let engine ?(model = Some (tiny_model ())) () =
  let cfg =
    {
      (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
      Serve_engine.grace_lo = -1e9;
      grace_hi = 1e9;
    }
  in
  Serve_engine.create ~spec:tiny_spec ~model cfg

let infer_line ?backend ~id () =
  let trace = Lazy.force tiny_trace in
  Sjson.to_string
    (Sjson.Obj
       ([
          ("op", Sjson.Str "infer");
          ("id", Sjson.Str id);
          ("sets", Sjson.Num 4.0);
          ("ways", Sjson.Num 2.0);
          ( "trace",
            Sjson.Arr (Array.to_list (Array.map (fun a -> Sjson.Num (float_of_int a)) trace))
          );
        ]
       @ match backend with None -> [] | Some b -> [ ("backend", Sjson.Str b) ]))

let reply e line =
  match Serve_engine.handle_line e line with
  | Serve_engine.Reply j | Serve_engine.Shutdown_reply j -> j

let test_engine_backend_registry () =
  let e = engine () in
  (* Default backend: the float32 model. *)
  let r = reply e (infer_line ~id:"f" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" false;
  check_str r "source" "model";
  check_str r "backend" "float32";
  (* int8: the eagerly quantized model serves, flagged as its own backend. *)
  let r = reply e (infer_line ~backend:"int8" ~id:"q" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" false;
  check_str r "source" "model";
  check_str r "backend" "int8";
  (* Explicit analytical backends are first-class, not degradations. *)
  let r = reply e (infer_line ~backend:"hrd" ~id:"h" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" false;
  check_str r "source" "hrd";
  check_str r "backend" "hrd";
  (* Unknown backend is a typed config error. *)
  check_str (reply e (infer_line ~backend:"fp16" ~id:"x" ())) "error" "invalid_config";
  (* Per-backend counters reconcile with the replies above. *)
  let s = reply e {|{"op": "stats"}|} in
  List.iter
    (fun (field, expected) ->
      Alcotest.(check (option (float 1e-9))) field (Some expected) (num_field s field))
    [
      ("backend_float32", 1.0); ("backend_int8", 1.0); ("backend_hrd", 1.0);
      ("backend_stm", 0.0);
    ]

let test_engine_int8_degrades_without_model () =
  (* No model at all: an int8 request still answers, via the fallback
     ladder, flagged degraded with the fallback as the serving backend. *)
  let e = engine ~model:None () in
  let r = reply e (infer_line ~backend:"int8" ~id:"d" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" true;
  check_str r "source" "hrd";
  check_str r "backend" "hrd";
  (* An explicitly analytical request needs no model and is not degraded. *)
  let r = reply e (infer_line ~backend:"stm" ~id:"s" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" false;
  check_str r "backend" "stm"

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "quant",
    [
      qc test_int8_gemm_bound;
      Alcotest.test_case "quantized checkpoint round-trip" `Quick
        test_qgen_checkpoint_roundtrip;
      Alcotest.test_case "int8 pipeline delta + domain bit-identity" `Quick
        test_int8_pipeline_delta;
      Alcotest.test_case "engine backend registry + counters" `Quick
        test_engine_backend_registry;
      Alcotest.test_case "int8 degrades through the ladder without a model" `Quick
        test_engine_int8_degrades_without_model;
    ] )
