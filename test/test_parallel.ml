(* Serial/parallel bit-identity: for every tested domain count the parallel
   kernels must produce *exactly* the floats the serial path produces
   (Float.equal per element, no tolerance). This is the determinism contract
   of the Dpool backend: deterministic contiguous slice ownership, one writer
   per output element, serial accumulation order preserved. *)

let domain_counts = [ 1; 2; 3; 8 ]

let gen_domains = QCheck.Gen.oneofl domain_counts

(* Exact comparison; Float.equal also distinguishes nan correctly. *)
let exact a b =
  Tensor.numel a = Tensor.numel b
  && Array.for_all2 Float.equal (Tensor.to_array a) (Tensor.to_array b)

let qc = QCheck_alcotest.to_alcotest

(* --- gemm --- *)

(* Shapes up to 48 cross the gemm parallel threshold (16384 multiply-adds)
   in a good fraction of cases, so both the serial fallback and the
   row-pair-sliced parallel path are exercised. *)
let gemm_case =
  QCheck.make
    ~print:(fun (m, k, n, ta, tb, alpha, beta, d, seed) ->
      Printf.sprintf "m=%d k=%d n=%d ta=%b tb=%b alpha=%g beta=%g domains=%d seed=%d" m k n ta
        tb alpha beta d seed)
    QCheck.Gen.(
      let* m = int_range 1 48 in
      let* k = int_range 1 48 in
      let* n = int_range 1 48 in
      let* ta = bool in
      let* tb = bool in
      let* alpha = oneofl [ 1.0; -0.5; 2.25; 0.0 ] in
      let* beta = oneofl [ 0.0; 1.0; -1.5; 0.5 ] in
      let* d = gen_domains in
      let+ seed = int_range 0 10_000 in
      (m, k, n, ta, tb, alpha, beta, d, seed))

let test_gemm_bit_identical =
  QCheck.Test.make ~name:"gemm parallel = serial (bit-identical)" ~count:120 gemm_case
    (fun (m, k, n, ta, tb, alpha, beta, d, seed) ->
      let rng = Prng.create seed in
      let a = Tensor.randn rng (if ta then [| k; m |] else [| m; k |]) in
      let b = Tensor.randn rng (if tb then [| n; k |] else [| k; n |]) in
      let c0 = Tensor.randn rng [| m; n |] in
      let run_with domains =
        let c = Tensor.copy c0 in
        Dpool.with_domains domains (fun () ->
            Blas.gemm ~trans_a:ta ~trans_b:tb ~alpha ~a ~b ~beta c);
        c
      in
      exact (run_with 1) (run_with d))

let test_gemv_bit_identical =
  QCheck.Test.make ~name:"gemv parallel = serial (bit-identical)" ~count:100
    QCheck.(triple (pair (int_range 1 220) (int_range 1 220)) (int_range 0 10_000) (oneofl domain_counts))
    (fun ((m, n), seed, d) ->
      let rng = Prng.create seed in
      let a = Tensor.randn rng [| m; n |] in
      let x = Tensor.randn rng [| n |] in
      let run_with domains = Dpool.with_domains domains (fun () -> Blas.gemv ~a ~x) in
      exact (run_with 1) (run_with d))

(* --- conv --- *)

let conv_case =
  QCheck.make
    ~print:(fun (n, ic, oc, hw, stride, d, seed) ->
      Printf.sprintf "n=%d ic=%d oc=%d hw=%d stride=%d domains=%d seed=%d" n ic oc hw stride d
        seed)
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* ic = int_range 1 3 in
      let* oc = int_range 1 4 in
      let* hw = int_range 4 14 in
      let* stride = int_range 1 2 in
      let* d = gen_domains in
      let+ seed = int_range 0 10_000 in
      (n, ic, oc, hw, stride, d, seed))

let test_conv2d_bit_identical =
  QCheck.Test.make ~name:"conv2d parallel = serial (bit-identical)" ~count:80 conv_case
    (fun (n, ic, oc, hw, stride, d, seed) ->
      let rng = Prng.create seed in
      let x = Tensor.randn rng [| n; ic; hw; hw |] in
      let w = Tensor.randn rng [| oc; ic; 3; 3 |] in
      let bias = Tensor.randn rng [| oc |] in
      let run_with domains =
        Dpool.with_domains domains (fun () ->
            Conv.conv2d ~x ~weight:w ~bias:(Some bias) ~stride ~pad:1)
      in
      exact (run_with 1) (run_with d))

let test_conv_transpose2d_bit_identical =
  QCheck.Test.make ~name:"conv_transpose2d parallel = serial (bit-identical)" ~count:60
    conv_case (fun (n, ic, oc, hw, stride, d, seed) ->
      let rng = Prng.create (seed + 31) in
      let x = Tensor.randn rng [| n; ic; hw; hw |] in
      let w = Tensor.randn rng [| ic; oc; 4; 4 |] in
      let run_with domains =
        Dpool.with_domains domains (fun () ->
            Conv.conv_transpose2d ~x ~weight:w ~bias:None ~stride ~pad:1)
      in
      exact (run_with 1) (run_with d))

let test_conv2d_backward_bit_identical =
  QCheck.Test.make ~name:"conv2d backward parallel = serial (bit-identical)" ~count:40
    conv_case (fun (n, ic, oc, hw, stride, d, seed) ->
      let rng = Prng.create (seed + 97) in
      let x = Tensor.randn rng [| n; ic; hw; hw |] in
      let w = Tensor.randn rng [| oc; ic; 3; 3 |] in
      let y = Conv.conv2d ~x ~weight:w ~bias:None ~stride ~pad:1 in
      let gout = Tensor.randn rng (Tensor.shape y) in
      let run_with domains =
        Dpool.with_domains domains (fun () ->
            let gw = Tensor.zeros (Tensor.shape w) in
            let gb = Tensor.zeros [| oc |] in
            let gx =
              Conv.conv2d_backward ~x ~weight:w ~gout ~stride ~pad:1 ~grad_weight:gw
                ~grad_bias:(Some gb)
            in
            (gx, gw, gb))
      in
      let gx1, gw1, gb1 = run_with 1 in
      let gxd, gwd, gbd = run_with d in
      exact gx1 gxd && exact gw1 gwd && exact gb1 gbd)

(* --- elementwise / reductions --- *)

(* Sizes straddle the 65536-element threshold so both paths run. The sum
   kernel's fixed chunk grid makes even the reduction independent of the
   domain count. *)
let elementwise_case =
  QCheck.make
    ~print:(fun (n, d, seed) -> Printf.sprintf "n=%d domains=%d seed=%d" n d seed)
    QCheck.Gen.(
      let* n = oneofl [ 17; 4_096; 65_535; 65_536; 70_001; 150_000 ] in
      let* d = gen_domains in
      let+ seed = int_range 0 10_000 in
      (n, d, seed))

let test_elementwise_bit_identical =
  QCheck.Test.make ~name:"tensor elementwise parallel = serial (bit-identical)" ~count:24
    elementwise_case (fun (n, d, seed) ->
      let rng = Prng.create seed in
      let a0 = Tensor.randn rng [| n |] and b = Tensor.randn rng [| n |] in
      let run_with domains =
        Dpool.with_domains domains (fun () ->
            let a = Tensor.copy a0 in
            Tensor.add_ a b;
            Tensor.mul_ a b;
            Tensor.scale_ a 1.125;
            Tensor.axpy ~alpha:(-0.75) ~x:b ~y:a;
            let m = Tensor.map (fun v -> Float.abs v +. 1.0) a in
            let s = Tensor.sum m in
            (a, m, s))
      in
      let a1, m1, s1 = run_with 1 in
      let ad, md, sd = run_with d in
      exact a1 ad && exact m1 md && Float.equal s1 sd)

let test_map_array_bit_identical =
  QCheck.Test.make ~name:"parallel_map_array = Array.map at every domain count" ~count:50
    QCheck.(pair (int_range 0 300) (oneofl domain_counts))
    (fun (n, d) ->
      let a = Array.init n (fun i -> float_of_int i *. 0.37) in
      let f x = (x *. 3.0) -. 1.0 in
      Dpool.parallel_map_array ~domains:d f a = Array.map f a)

let suite =
  ( "parallel-bit-identity",
    [
      qc test_gemm_bit_identical;
      qc test_gemv_bit_identical;
      qc test_conv2d_bit_identical;
      qc test_conv_transpose2d_bit_identical;
      qc test_conv2d_backward_bit_identical;
      qc test_elementwise_bit_identical;
      qc test_map_array_bit_identical;
    ] )
