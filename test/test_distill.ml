(* Knowledge distillation and the student serving backend: the
   zero-temperature supervised-loss identity, cross-domain bit-identical
   distillation, student checkpoint integrity (corrupt-byte rejection with
   the teacher unaffected), the student degradation rung, per-backend
   counters for student/student-int8, and the no-backend-mixing guarantee
   of the batched path. *)

let str_field json k = Option.bind (Sjson.member k json) Sjson.to_str
let bool_field json k = Option.bind (Sjson.member k json) Sjson.to_bool
let num_field json k = Option.bind (Sjson.member k json) Sjson.to_float

let check_str json k expected =
  Alcotest.(check (option string)) k (Some expected) (str_field json k)

let check_bool json k expected =
  Alcotest.(check (option bool)) k (Some expected) (bool_field json k)

let temp_dir () =
  let d = Filename.temp_file "cbox_distill" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* --- fixtures (mirroring the quant/serve tiny setup) --- *)

let tiny_spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 ()

let tiny_model_config =
  { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with Cbgan.cond_dim = 4; cond_hidden = 8 }

let tiny_student_config = Distill.student_config tiny_model_config
let tiny_teacher () = Cbgan.create ~seed:51 tiny_model_config
let tiny_student () = Student.create ~seed:7 tiny_student_config
let tiny_cache = Cache.config ~sets:64 ~ways:8 ()

let tiny_trace_len = 4 * Heatmap.accesses_per_image tiny_spec

let tiny_trace =
  lazy
    (let rng = Prng.create 31 in
     Array.init tiny_trace_len (fun i ->
         if Prng.float rng 1.0 < 0.7 then (i mod 32) * 64 else Prng.int rng 4096 * 64))

let tiny_workload name seed =
  Workload.make ~name ~suite:Workload.Spec ~group:name (fun n ->
      let rng = Prng.create seed in
      Array.init n (fun i ->
          if Prng.float rng 1.0 < 0.7 then (i mod 32) * 8 else Prng.int rng 8192 * 64))

let tiny_samples () =
  Cbox_dataset.to_samples
    (Cbox_dataset.build_l1 tiny_spec ~configs:[ Cache.config ~sets:4 ~ways:2 () ]
       ~trace_len:600
       [ tiny_workload "d1" 5; tiny_workload "d2" 6 ])

(* --- temperature 0 reproduces the plain supervised loss bitwise --- *)

let test_tau0_supervised_identity =
  (* The student's own forward output is the [out] under the loss — the
     exact graph a real distillation step differentiates — and the teacher
     shares the student's architecture (it exists and its output tensor is
     supplied), yet at temperature 0 it must not perturb a single bit. *)
  QCheck.Test.make ~name:"distill step at temperature 0 == supervised loss, bitwise"
    ~count:20
    QCheck.(tup3 (int_range 0 1_000_000) (int_range 1 4) (tup2 (float_range 0.0 2.0) (float_range 0.0 2.0)))
    (fun (seed, n, (l1_weight, l2_weight)) ->
      let rng = Prng.create seed in
      let student = tiny_student () in
      let twin = Student.create ~seed:(seed + 1) tiny_student_config in
      let x = Tensor.randn rng [| n; 1; 16; 16 |] in
      let cp =
        Cbgan.cache_params_tensor (List.init n (fun _ -> tiny_cache))
      in
      let out = Student.forward student ~training:true ~cache_params:cp x in
      let truth = Tensor.randn rng [| n; 1; 16; 16 |] in
      (* A same-architecture "teacher" output that MUST be ignored. *)
      let teacher_out =
        Value.value (Student.forward twin ~training:false ~cache_params:cp x)
      in
      let blended =
        Distill.step_loss ~temperature:0.0 ~l1_weight ~l2_weight ~out ~truth
          ~teacher:(Some teacher_out)
      in
      let supervised = Distill.pixel_loss ~l1_weight ~l2_weight out truth in
      let bits v = Array.map Int64.bits_of_float (Tensor.to_array (Value.value v)) in
      bits blended = bits supervised)

(* --- distillation is bit-identical across domain counts --- *)

let distill_run ~domains ~temperature ~feat_weight =
  let teacher = tiny_teacher () in
  let student = tiny_student () in
  let options =
    {
      (Distill.default_options ~epochs:1 ~temperature ~feat_weight ~domains ()) with
      Distill.batch_size = 2;
    }
  in
  let stats = Distill.train ~teacher student tiny_spec options (tiny_samples ()) in
  let bits =
    List.map
      (fun (p : Param.t) -> Array.map Int64.bits_of_float (Tensor.to_array p.Param.value))
      (Student.params student)
  in
  (stats, bits)

let test_distill_domain_bit_identity () =
  List.iter
    (fun (temperature, feat_weight) ->
      let s1, b1 = distill_run ~domains:1 ~temperature ~feat_weight in
      let s4, b4 = distill_run ~domains:4 ~temperature ~feat_weight in
      let label =
        Printf.sprintf "tau %.1f feat %.1f: domains 1 vs 4" temperature feat_weight
      in
      Alcotest.(check bool) (label ^ " params bit-identical") true (b1 = b4);
      Alcotest.(check bool) (label ^ " stats bit-identical") true
        (List.for_all2
           (fun (a : Distill.epoch_stats) (b : Distill.epoch_stats) ->
             a.Distill.epoch = b.Distill.epoch
             && Int64.bits_of_float a.Distill.pixel = Int64.bits_of_float b.Distill.pixel
             && Int64.bits_of_float a.Distill.feat = Int64.bits_of_float b.Distill.feat
             && a.Distill.batches = b.Distill.batches)
           s1 s4))
    [ (1.0, 0.0); (0.5, 0.5) ]

(* --- student checkpoint: round-trip and corrupt-byte rejection --- *)

let test_student_checkpoint_roundtrip () =
  let s = tiny_student () in
  let dir = temp_dir () in
  let path = Filename.concat dir "student.ckpt" in
  Student.save s path;
  let s' = Student.load path in
  let rng = Prng.create 3 in
  let x = Tensor.randn rng [| 2; 1; 16; 16 |] in
  let cp = Cbgan.cache_params_tensor [ tiny_cache; tiny_cache ] in
  let fwd m = Tensor.to_array (Value.value (Student.forward m ~training:false ~cache_params:cp x)) in
  Alcotest.(check bool) "reloaded student forward is bit-identical" true
    (Array.map Int64.bits_of_float (fwd s) = Array.map Int64.bits_of_float (fwd s'));
  rm_rf dir

let test_student_checkpoint_corruption =
  QCheck.Test.make ~name:"corrupt any student checkpoint byte -> load fails with Failure"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun offset ->
      let dir = temp_dir () in
      let path = Filename.concat dir "student.ckpt" in
      Student.save (tiny_student ()) path;
      Faultinject.corrupt_byte path ~offset;
      let ok =
        match Student.load path with
        | _ -> false
        | exception Failure _ -> true
        | exception _ -> false
      in
      rm_rf dir;
      ok)

(* --- serving engine: the student rungs of the ladder --- *)

let engine ?(model = Some (tiny_teacher ())) ?student_path () =
  let cfg =
    {
      (Serve_engine.default_config ~fallback:Cbox_infer.Fallback_hrd ()) with
      Serve_engine.grace_lo = -1e9;
      grace_hi = 1e9;
    }
  in
  Serve_engine.create ?student_path ~spec:tiny_spec ~model cfg

let infer_line ?backend ~id () =
  let trace = Lazy.force tiny_trace in
  Sjson.to_string
    (Sjson.Obj
       ([
          ("op", Sjson.Str "infer");
          ("id", Sjson.Str id);
          ("sets", Sjson.Num 4.0);
          ("ways", Sjson.Num 2.0);
          ( "trace",
            Sjson.Arr (Array.to_list (Array.map (fun a -> Sjson.Num (float_of_int a)) trace))
          );
        ]
       @ match backend with None -> [] | Some b -> [ ("backend", Sjson.Str b) ]))

let reply e line =
  match Serve_engine.handle_line e line with
  | Serve_engine.Reply j | Serve_engine.Shutdown_reply j -> j

let with_student_ckpt f =
  let dir = temp_dir () in
  let path = Filename.concat dir "student.ckpt" in
  Student.save (tiny_student ()) path;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f path)

let test_engine_student_missing_degrades () =
  (* No student checkpoint configured: a student request re-runs on
     float32, flagged, without ever touching the breaker — exactly the
     int8 missing-model rung. *)
  let e = engine () in
  let r = reply e (infer_line ~backend:"student" ~id:"s" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" true;
  check_str r "backend" "float32";
  check_str r "reason" "student_unavailable";
  let r = reply e (infer_line ~backend:"student-int8" ~id:"q" ()) in
  check_bool r "ok" true;
  check_bool r "degraded" true;
  check_str r "backend" "float32";
  check_str r "reason" "student_int8_unavailable";
  Alcotest.(check string) "breaker untouched by derived-model misses" "closed"
    (Breaker.state_name (Serve_engine.breaker_state e));
  let s = reply e {|{"op": "stats"}|} in
  Alcotest.(check (option (float 1e-9))) "student counter untouched" (Some 0.0)
    (num_field s "backend_student");
  Alcotest.(check (option (float 1e-9))) "reruns counted as float32" (Some 2.0)
    (num_field s "backend_float32")

let test_engine_student_serves () =
  with_student_ckpt (fun path ->
      let e = engine ~student_path:path () in
      Alcotest.(check bool) "student loaded" true (Serve_engine.student_loaded e);
      let h = reply e {|{"op": "health"}|} in
      check_bool h "student_loaded" true;
      let r = reply e (infer_line ~backend:"student" ~id:"s" ()) in
      check_bool r "ok" true;
      check_bool r "degraded" false;
      check_str r "source" "model";
      check_str r "backend" "student";
      let r = reply e (infer_line ~backend:"student-int8" ~id:"q" ()) in
      check_bool r "ok" true;
      check_bool r "degraded" false;
      check_str r "backend" "student-int8";
      (* Every successful answer credits exactly one backend counter. *)
      let s = reply e {|{"op": "stats"}|} in
      List.iter
        (fun (field, expected) ->
          Alcotest.(check (option (float 1e-9))) field (Some expected)
            (num_field s field))
        [
          ("backend_student", 1.0);
          ("backend_student_int8", 1.0);
          ("backend_float32", 0.0);
        ])

let test_engine_corrupt_student_rejected () =
  (* A corrupt student checkpoint is dropped at create; float32 (and the
     whole teacher-side ladder) serves untouched. *)
  let dir = temp_dir () in
  let path = Filename.concat dir "student.ckpt" in
  Student.save (tiny_student ()) path;
  Faultinject.corrupt_byte path ~offset:40;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let e = engine ~student_path:path () in
      Alcotest.(check bool) "corrupt student not loaded" false
        (Serve_engine.student_loaded e);
      Alcotest.(check bool) "teacher unaffected" true (Serve_engine.model_loaded e);
      let r = reply e (infer_line ~backend:"float32" ~id:"f" ()) in
      check_bool r "ok" true;
      check_bool r "degraded" false;
      check_str r "backend" "float32";
      let r = reply e (infer_line ~backend:"student" ~id:"s" ()) in
      check_bool r "ok" true;
      check_bool r "degraded" true;
      check_str r "backend" "float32";
      check_str r "reason" "student_unavailable")

(* --- batched path: heterogeneous batches never mix backends --- *)

let hit_rate_bits reply =
  match num_field reply "hit_rate" with
  | Some hr -> Int64.bits_of_float hr
  | None -> Alcotest.failf "reply has no hit_rate: %s" (Sjson.to_string reply)

let test_mixed_batch_no_backend_mixing () =
  (* One coalesced batch carrying all four learned-variant backends: each
     reply must name its own backend and carry the hit rate the sequential
     single-backend path produces, bit for bit — possible only if the
     batcher partitioned the batch into per-backend forwards instead of
     mixing variants inside one wide-batch GEMM. Counters must reconcile
     per backend. *)
  with_student_ckpt (fun path ->
      let model = tiny_teacher () in
      let backends = [ "float32"; "int8"; "student"; "student-int8" ] in
      let lines =
        List.concat_map
          (fun b -> [ infer_line ~backend:b ~id:(b ^ "-0") (); infer_line ~backend:b ~id:(b ^ "-1") () ])
          backends
      in
      let sequential =
        let e = engine ~model:(Some model) ~student_path:path () in
        List.map (reply e) lines
      in
      let batched =
        let e = engine ~model:(Some model) ~student_path:path () in
        let items =
          List.map
            (fun line ->
              match Serve_engine.classify_line e line with
              | Serve_engine.Batchable item -> item
              | _ -> Alcotest.fail "expected a batchable infer request")
            lines
        in
        let rs = Serve_engine.infer_batch e items in
        let s = reply e {|{"op": "stats"}|} in
        List.iter
          (fun b ->
            let key = "backend_" ^ String.map (fun c -> if c = '-' then '_' else c) b in
            Alcotest.(check (option (float 1e-9))) (key ^ " reconciles") (Some 2.0)
              (num_field s key))
          backends;
        rs
      in
      List.iteri
        (fun i (seq, bat) ->
          Alcotest.(check (option string))
            (Printf.sprintf "id %d" i)
            (str_field seq "id") (str_field bat "id");
          Alcotest.(check (option string))
            (Printf.sprintf "backend %d" i)
            (str_field seq "backend") (str_field bat "backend");
          Alcotest.(check (option bool))
            (Printf.sprintf "degraded %d" i)
            (Some false) (bool_field bat "degraded");
          Alcotest.(check int64)
            (Printf.sprintf "hit_rate bits %d" i)
            (hit_rate_bits seq) (hit_rate_bits bat))
        (List.combine sequential batched))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "distill",
    [
      qc test_tau0_supervised_identity;
      Alcotest.test_case "distillation bit-identical across domain counts" `Slow
        test_distill_domain_bit_identity;
      Alcotest.test_case "student checkpoint round-trip" `Quick
        test_student_checkpoint_roundtrip;
      qc test_student_checkpoint_corruption;
      Alcotest.test_case "missing student degrades to flagged float32" `Quick
        test_engine_student_missing_degrades;
      Alcotest.test_case "student + student-int8 serve with counters" `Quick
        test_engine_student_serves;
      Alcotest.test_case "corrupt student rejected, teacher unaffected" `Quick
        test_engine_corrupt_student_rejected;
      Alcotest.test_case "mixed batch never mixes backends" `Quick
        test_mixed_batch_no_backend_mixing;
    ] )
